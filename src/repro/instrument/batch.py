"""Batched vectorized penalty kernels (the batched specialized tier).

One kernel call evaluates ``N`` starts: given the same lowered IR and
saturation mask the scalar specializer consumes
(:mod:`repro.instrument.specialize`), this module compiles a **batched
kernel** -- a callable taking an ``(N, arity)`` float64 array and returning
the ``(N,)`` penalty vector ``r`` plus a union covered-bit summary.

Two modes exist behind one interface:

* **vector** -- the whole program is interpreted lane-parallel with numpy:
  every statement is compiled once into a closure operating on length-``N``
  arrays under a boolean *lane mask*, probe sites inline the same fused
  Def. 4.2 distance arithmetic the scalar specializer emits (same NaN
  constants, same composition fold ordering as ``_compose_tree``), and
  divergent control flow splits the mask instead of branching.  Only
  programs whose statements and expressions fall inside a strict whitelist
  compile to this mode.
* **rows** -- the universal fallback: a tight per-row loop over the
  program's existing :class:`~repro.instrument.program.SpecializedVariant`,
  amortizing the per-call wrapper overhead while keeping literally the
  scalar tier's execution.

Either way ``r`` is **bit-identical row-for-row** with the scalar
``PENALTY_SPECIALIZED`` tier (property-tested in ``tests/test_batch.py``).
Lanes whose scalar execution would raise a swallowed exception
(``ZeroDivisionError``, ``int()`` of a NaN, a negative shift count) are
*frozen*: deactivated with whatever ``r`` and covered bits they had, exactly
like the scalar tier's swallow-and-keep-``r`` contract.  Conditions the
lane-parallel interpreter cannot replicate bit-exactly (a shift count above
63, ``int()`` beyond int64) raise an internal bailout that **stickily
demotes** the kernel to rows mode -- correctness never depends on the
whitelist being perfect.

numpy is optional here (the ``[batch]`` extra): when it is missing,
:func:`numpy_available` is ``False`` and callers degrade to the scalar
specialized tier with a one-time warning.

Compiled kernels are cached at module level per ``(source sha256, function
name, start label, mask, epsilon)`` exactly like the scalar specialization
cache, and the statistics surface through
``repro.instrument.program.compiled_cache_info()``.
"""

from __future__ import annotations

import ast
import builtins
import hashlib
import textwrap
import threading
import warnings
from typing import Callable, Optional

try:  # pragma: no cover - exercised by monkeypatching in tests
    import numpy as np
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.instrument.ast_pass import (
    _AST_OPS,
    _NEGATED,
    MAX_TREE_TOKENS,
    InstrumentationPass,
    _LoweringOverflow,
    _TreeLowering,
    as_simple_comparison,
    assign_labels,
    is_chain,
    strip_not,
)
from repro.instrument.runtime import BIG_DISTANCE

#: Exceptions the scalar tiers swallow; vector lanes freeze instead.
_SWALLOWED = (ArithmeticError, ValueError, OverflowError)

_I64_MIN = -(2**63)
_I64_MAX = 2**63 - 1


def numpy_available() -> bool:
    """Whether the vectorized path can run at all."""
    return np is not None


_WARNED: set[str] = set()
_WARNED_LOCK = threading.Lock()


def warn_once(key: str, message: str) -> None:
    """Emit ``message`` as a RuntimeWarning at most once per process."""
    with _WARNED_LOCK:
        if key in _WARNED:
            return
        _WARNED.add(key)
    warnings.warn(message, RuntimeWarning, stacklevel=3)


class _Unvectorizable(Exception):
    """Static analysis verdict: compile this program in rows mode."""


class _VectorBailout(Exception):
    """Runtime verdict: this batch hit a non-replicable condition."""


# -- composition specs (mirrors _Specializer._build_spec shapes) -------------------------


class _Cmp:
    __slots__ = ("op", "lhs", "rhs", "pre")

    def __init__(self, op, lhs, rhs, pre):
        self.op, self.lhs, self.rhs, self.pre = op, lhs, rhs, pre


class _Truth:
    __slots__ = ("value", "negated")

    def __init__(self, value, negated):
        self.value, self.negated = value, negated


class _Bool:
    __slots__ = ("is_and", "children")

    def __init__(self, is_and, children):
        self.is_and, self.children = is_and, children


class _Tern:
    __slots__ = ("cond", "body", "orelse")

    def __init__(self, cond, body, orelse):
        self.cond, self.body, self.orelse = cond, body, orelse


class _Ctx:
    """Per-batch interpreter state: lane environment, masks, r, coverage."""

    __slots__ = ("env", "active", "r", "cov", "n")

    def __init__(self, env, active, r, n):
        self.env = env
        self.active = active
        self.r = r
        self.cov = 0
        self.n = n


# -- dtype helpers ------------------------------------------------------------------------


def _f64(v, n):
    """``v`` as a float64 array of length ``n`` (Python float() semantics)."""
    if isinstance(v, np.ndarray):
        if v.dtype == np.float64:
            return v
        return v.astype(np.float64)
    return np.full(n, float(v), dtype=np.float64)


def _num(v):
    """Promote bool arrays to int64 so arithmetic matches Python ints."""
    if isinstance(v, np.ndarray) and v.dtype == np.bool_:
        return v.astype(np.int64)
    if isinstance(v, bool):
        return int(v)
    return v


def _truthy(v, n):
    """Python truthiness per lane: bool stays, numeric becomes ``v != 0``."""
    if isinstance(v, np.ndarray):
        if v.dtype == np.bool_:
            return v
        return v != 0
    return np.full(n, bool(v), dtype=np.bool_)


def _raw_bits(v, n):
    """int64 view of the float64 bit patterns (contiguity guaranteed)."""
    a = np.ascontiguousarray(_f64(v, n))
    return a.view(np.int64)


def _squared_gap(a, b):
    """Vector mirror of ``_squared_gap``: inf gap clamps to BIG_DISTANCE."""
    gap = a - b
    return np.where(
        np.isinf(gap),
        BIG_DISTANCE,
        np.minimum(gap * gap, BIG_DISTANCE),
    )


def _branch_distance(op, a, b, eps):
    """Vector mirror of ``branch_distance(op, a, b, epsilon)`` exactly."""
    if op == "==":
        return _squared_gap(a, b)
    if op == "!=":
        return np.where(a != b, 0.0, eps)
    if op == "<=":
        return np.where(a <= b, 0.0, _squared_gap(a, b))
    if op == "<":
        return np.where(a < b, 0.0, _squared_gap(a, b) + eps)
    if op == ">=":
        return _branch_distance("<=", b, a, eps)
    if op == ">":
        return _branch_distance("<", b, a, eps)
    raise _Unvectorizable(f"unsupported comparison operator {op!r}")


def _pair_distances(op, a, b, eps):
    """Both directions of the fused FastRuntime.cmp arithmetic, per lane."""
    if op == "!=":
        g = _squared_gap(a, b)
        return np.where(a != b, 0.0, eps), g
    if op == "==":
        g = _squared_gap(a, b)
        return g, np.where(a == b, eps, 0.0)
    g = _squared_gap(a, b)
    if op == "<":
        return np.where(a < b, 0.0, g + eps), np.where(b <= a, 0.0, g)
    if op == "<=":
        return np.where(a <= b, 0.0, g), np.where(b < a, 0.0, g + eps)
    if op == ">":
        return np.where(b < a, 0.0, g + eps), np.where(a <= b, 0.0, g)
    if op == ">=":
        return np.where(b <= a, 0.0, g), np.where(a < b, 0.0, g + eps)
    raise _Unvectorizable(f"unsupported comparison operator {op!r}")


# -- intrinsic calls ----------------------------------------------------------------------

_LOW_MASK = 0xFFFFFFFF
_ABS64 = 0x7FFFFFFFFFFFFFFF


def _view_f64(bits64):
    return np.ascontiguousarray(bits64).view(np.float64)


def _make_intrinsics():
    """Map supported callables (by identity) to their lane-parallel bodies.

    Every entry replicates the scalar helper of :mod:`repro.fdlibm.bits` (or
    the builtin) bit-for-bit on the lanes selected by ``eff``; garbage on
    masked lanes is fine because every consumer stores through ``np.where``.
    """
    from repro.fdlibm import bits as _bits

    def i_high_word(ctx, eff, x):
        return _raw_bits(x, ctx.n) >> 32  # arithmetic shift == signed high word

    def i_low_word(ctx, eff, x):
        return _raw_bits(x, ctx.n) & _LOW_MASK

    def i_from_words(ctx, eff, hi, lo):
        hi64 = _num(hi) & _LOW_MASK
        lo64 = _num(lo) & _LOW_MASK
        return _view_f64((hi64 << np.int64(32)) | lo64)

    def i_set_high_word(ctx, eff, x, hi):
        raw = _raw_bits(x, ctx.n)
        return _view_f64(((_num(hi) & _LOW_MASK) << np.int64(32)) | (raw & _LOW_MASK))

    def i_set_low_word(ctx, eff, x, lo):
        raw = _raw_bits(x, ctx.n)
        return _view_f64((raw & np.int64(-0x100000000)) | (_num(lo) & _LOW_MASK))

    def i_abs_high_word(ctx, eff, x):
        return (_raw_bits(x, ctx.n) >> 32) & 0x7FFFFFFF

    def i_copysign_bit(ctx, eff, x, y):
        rx = _raw_bits(x, ctx.n)
        ry = _raw_bits(y, ctx.n)
        return _view_f64((rx & np.int64(_ABS64)) | (ry & np.int64(_I64_MIN)))

    def i_fabs(ctx, eff, x):
        return _view_f64(_raw_bits(x, ctx.n) & np.int64(_ABS64))

    def i_float(ctx, eff, x):
        return _f64(x, ctx.n)

    def i_int(ctx, eff, x):
        x = _num(x)
        if not isinstance(x, np.ndarray):
            return int(x)
        if x.dtype != np.float64:
            return x
        live = eff & ctx.active
        bad = live & ~np.isfinite(x)
        if bad.any():
            # int(nan) raises ValueError, int(inf) OverflowError: both
            # swallowed by the scalar tier, so these lanes freeze.
            ctx.active &= ~bad
            live = live & ~bad
        if (live & (np.abs(x) >= 9.223372036854776e18)).any():
            raise _VectorBailout("int() beyond int64 range")
        safe = np.where(np.isfinite(x), x, 0.0)
        return np.trunc(safe).astype(np.int64)

    def i_abs(ctx, eff, x):
        x = _num(x)
        if isinstance(x, np.ndarray) and x.dtype == np.float64:
            return i_fabs(ctx, eff, x)
        return abs(x) if not isinstance(x, np.ndarray) else np.abs(x)

    return {
        _bits.high_word: i_high_word,
        _bits.low_word: i_low_word,
        _bits.from_words: i_from_words,
        _bits.set_high_word: i_set_high_word,
        _bits.set_low_word: i_set_low_word,
        _bits.abs_high_word: i_abs_high_word,
        _bits.copysign_bit: i_copysign_bit,
        _bits.fabs: i_fabs,
        builtins.float: i_float,
        builtins.int: i_int,
        builtins.abs: i_abs,
    }


_INTRINSICS = None
_INTRINSICS_LOCK = threading.Lock()


def _intrinsics():
    global _INTRINSICS
    if _INTRINSICS is None:
        with _INTRINSICS_LOCK:
            if _INTRINSICS is None:
                _INTRINSICS = _make_intrinsics()
    return _INTRINSICS


# -- the lane-masked compiler -------------------------------------------------------------

_BIN_OPS = {
    ast.Add: "+",
    ast.Sub: "-",
    ast.Mult: "*",
    ast.Div: "/",
    ast.FloorDiv: "//",
    ast.Mod: "%",
    ast.BitAnd: "&",
    ast.BitOr: "|",
    ast.BitXor: "^",
    ast.LShift: "<<",
    ast.RShift: ">>",
}

_CMP_FUNCS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _is_bool_value(v) -> bool:
    if isinstance(v, np.ndarray):
        return v.dtype == np.bool_
    return isinstance(v, bool)


def _as_bool_array(v, n):
    if isinstance(v, np.ndarray):
        return v
    return np.full(n, bool(v), dtype=np.bool_)


def _store(ctx, name, value, eff):
    """Masked store: ``env[name]`` keeps its old value on unselected lanes."""
    old = ctx.env.get(name)
    if old is None:
        if isinstance(value, np.ndarray):
            old = np.zeros(ctx.n, dtype=value.dtype)
        elif isinstance(value, bool):
            old = np.zeros(ctx.n, dtype=np.bool_)
        elif isinstance(value, int):
            old = np.zeros(ctx.n, dtype=np.int64)
        else:
            old = np.zeros(ctx.n, dtype=np.float64)
    ctx.env[name] = np.where(eff, value, old)


def _update_cov(ctx, label, out, eff):
    """Union covered-bit summary: any lane taking a direction sets its bit."""
    if bool((eff & out).any()):
        ctx.cov |= 1 << ((label << 1) | 1)
    if bool((eff & ~out).any()):
        ctx.cov |= 1 << (label << 1)


def _vfold_pair(is_and, x, y):
    """Per-lane mirror of ``_Specializer._fold_pair`` on (t, f, u) triples."""
    xt, xf, xu = x
    if y is None:
        return xt, xf, xu
    yt, yf, yu = y
    both = xu & yu
    if is_and:
        t = xt + yt
        f = np.where(yf < xf, yf, xf)
    else:
        t = np.where(yt < xt, yt, xt)
        f = xf + yf
    t = np.where(both, t, np.where(xu, xt, yt))
    f = np.where(both, f, np.where(xu, xf, yf))
    return t, f, xu | yu


#: Prefix of vector-compiler chain temporaries (kept out of user locals).
_TEMP_PREFIX = "__bt"


class _VectorCompiler:
    """Compiles one instrumented unit into lane-masked statement closures.

    Statement closures have signature ``f(ctx, m)`` -- ``m`` is the incoming
    lane mask; each re-intersects with ``ctx.active`` so lanes frozen by an
    earlier fault stop participating.  Expression closures have signature
    ``f(ctx, eff) -> value`` and may shrink ``ctx.active`` (faults) but never
    mutate ``eff``; consumers re-intersect after every sub-evaluation.
    Anything outside the whitelist raises :class:`_Unvectorizable` at compile
    time, demoting the whole program to rows mode.
    """

    def __init__(self, labels, saturated_mask, epsilon, namespace):
        self.labels = labels
        self.mask = saturated_mask
        self.eps = epsilon
        self.ns = namespace
        self.local_names: set[str] = set()
        self._counter = 0

    # -- statements ------------------------------------------------------------

    def _temp(self) -> str:
        name = f"{_TEMP_PREFIX}{self._counter}"
        self._counter += 1
        self.local_names.add(name)
        return name

    def _block(self, stmts) -> list:
        out = []
        for stmt in stmts:
            fn = self._stmt(stmt)
            if fn is not None:
                out.append(fn)
        return out

    def _stmt(self, node):
        if isinstance(node, ast.Assign):
            if len(node.targets) != 1 or not isinstance(node.targets[0], ast.Name):
                raise _Unvectorizable("only single-name assignment targets")
            return self._make_store(node.targets[0].id, self._expr(node.value))
        if isinstance(node, ast.AugAssign):
            if not isinstance(node.target, ast.Name):
                raise _Unvectorizable("augmented assignment to non-name")
            load = ast.Name(id=node.target.id, ctx=ast.Load())
            binop = ast.BinOp(left=load, op=node.op, right=node.value)
            return self._make_store(node.target.id, self._expr(binop))
        if isinstance(node, ast.AnnAssign):
            if not isinstance(node.target, ast.Name):
                raise _Unvectorizable("annotated assignment to non-name")
            if node.value is None:
                return None
            return self._make_store(node.target.id, self._expr(node.value))
        if isinstance(node, ast.Return):
            return self._make_return()
        if isinstance(node, ast.If):
            return self._compile_if(node)
        if isinstance(node, ast.Expr):
            if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
                return None  # docstring
            vfn = self._expr(node.value)

            def run_expr(ctx, m, vfn=vfn):
                eff = m & ctx.active
                if eff.any():
                    vfn(ctx, eff)

            return run_expr
        if isinstance(node, ast.Pass):
            return None
        raise _Unvectorizable(f"statement {type(node).__name__} is not vectorizable")

    def _make_store(self, name, vfn):
        def run(ctx, m):
            eff = m & ctx.active
            if not eff.any():
                return
            value = vfn(ctx, eff)
            eff = eff & ctx.active
            _store(ctx, name, value, eff)

        return run

    def _make_return(self):
        # The return expression is never evaluated: whitelisted expressions
        # are pure, r/covered are untouched by it, and a fault there could
        # only freeze lanes this statement deactivates anyway.
        def run(ctx, m):
            eff = m & ctx.active
            if eff.any():
                ctx.active &= ~eff

        return run

    # -- expressions -----------------------------------------------------------

    def _expr(self, node) -> Callable:
        if isinstance(node, ast.Constant):
            v = node.value
            if isinstance(v, bool) or isinstance(v, float):
                return lambda ctx, eff, v=v: v
            if isinstance(v, int):
                if not (_I64_MIN <= v <= _I64_MAX):
                    raise _Unvectorizable("integer constant beyond int64")
                return lambda ctx, eff, v=v: v
            raise _Unvectorizable(f"constant of type {type(v).__name__}")
        if isinstance(node, ast.Name):
            name = node.id
            if name in self.local_names:
                return lambda ctx, eff, name=name: ctx.env[name]
            if name in self.ns:
                v = self.ns[name]
            else:
                v = getattr(builtins, name, _Unvectorizable)
                if v is _Unvectorizable:
                    raise _Unvectorizable(f"unresolvable global {name!r}")
            if isinstance(v, bool) or isinstance(v, float):
                return lambda ctx, eff, v=v: v
            if isinstance(v, int):
                if not (_I64_MIN <= v <= _I64_MAX):
                    raise _Unvectorizable("global integer beyond int64")
                return lambda ctx, eff, v=v: v
            raise _Unvectorizable(f"global {name!r} is not a numeric constant")
        if isinstance(node, ast.BinOp):
            return self._binop(node)
        if isinstance(node, ast.UnaryOp):
            vfn = self._expr(node.operand)
            if isinstance(node.op, ast.USub):
                return lambda ctx, eff: -_num(vfn(ctx, eff))
            if isinstance(node.op, ast.UAdd):
                return lambda ctx, eff: +_num(vfn(ctx, eff))
            if isinstance(node.op, ast.Invert):
                return lambda ctx, eff: ~_num(vfn(ctx, eff))
            if isinstance(node.op, ast.Not):
                return lambda ctx, eff: ~_truthy(vfn(ctx, eff), ctx.n)
            raise _Unvectorizable("unsupported unary operator")
        if isinstance(node, ast.Compare):
            if len(node.ops) != 1 or type(node.ops[0]) not in _AST_OPS:
                raise _Unvectorizable("only single whitelisted comparisons")
            op = _AST_OPS[type(node.ops[0])]
            lf = self._expr(node.left)
            rf = self._expr(node.comparators[0])
            cmp = _CMP_FUNCS[op]

            def run_cmp(ctx, eff, lf=lf, rf=rf, cmp=cmp):
                out = cmp(lf(ctx, eff), rf(ctx, eff))
                return _as_bool_array(out, ctx.n)

            return run_cmp
        if isinstance(node, ast.BoolOp):
            is_and = isinstance(node.op, ast.And)
            fns = [self._expr(v) for v in node.values]

            def run_bool(ctx, eff, fns=fns, is_and=is_and):
                acc = fns[0](ctx, eff)
                for fn in fns[1:]:
                    c = _truthy(acc, ctx.n)
                    sub = (eff & c if is_and else eff & ~c) & ctx.active
                    nxt = fn(ctx, sub)
                    acc = np.where(c, nxt, acc) if is_and else np.where(c, acc, nxt)
                return acc

            return run_bool
        if isinstance(node, ast.IfExp):
            cf = self._expr(node.test)
            bf = self._expr(node.body)
            of = self._expr(node.orelse)

            def run_ifexp(ctx, eff, cf=cf, bf=bf, of=of):
                c = _truthy(cf(ctx, eff), ctx.n)
                live = eff & ctx.active
                bv = bf(ctx, live & c)
                ov = of(ctx, live & ~c)
                return np.where(c, bv, ov)

            return run_ifexp
        if isinstance(node, ast.Call):
            return self._call(node)
        raise _Unvectorizable(f"expression {type(node).__name__} is not vectorizable")

    def _call(self, node: ast.Call) -> Callable:
        if node.keywords or not isinstance(node.func, ast.Name):
            raise _Unvectorizable("only plain positional intrinsic calls")
        name = node.func.id
        if name in self.local_names:
            raise _Unvectorizable("call through a local name")
        obj = self.ns.get(name, getattr(builtins, name, None))
        impl = _intrinsics().get(obj) if obj is not None else None
        if impl is None:
            raise _Unvectorizable(f"call to non-intrinsic {name!r}")
        argfns = [self._expr(a) for a in node.args]

        def run_call(ctx, eff, impl=impl, argfns=argfns):
            return impl(ctx, eff, *[fn(ctx, eff) for fn in argfns])

        return run_call

    def _binop(self, node: ast.BinOp) -> Callable:
        kind = _BIN_OPS.get(type(node.op))
        if kind is None:
            raise _Unvectorizable(f"operator {type(node.op).__name__}")
        lf = self._expr(node.left)
        rf = self._expr(node.right)

        if kind in ("+", "-", "*"):
            import operator

            fn = {"+": operator.add, "-": operator.sub, "*": operator.mul}[kind]

            def run_arith(ctx, eff, lf=lf, rf=rf, fn=fn):
                return fn(_num(lf(ctx, eff)), _num(rf(ctx, eff)))

            return run_arith

        if kind in ("&", "|", "^"):
            import operator

            fn = {"&": operator.and_, "|": operator.or_, "^": operator.xor}[kind]

            def run_bits(ctx, eff, lf=lf, rf=rf, fn=fn):
                return fn(_num(lf(ctx, eff)), _num(rf(ctx, eff)))

            return run_bits

        if kind == "/":

            def run_div(ctx, eff, lf=lf, rf=rf):
                a = _num(lf(ctx, eff))
                b = _num(rf(ctx, eff))
                bad = eff & ctx.active & (b == 0)
                if isinstance(bad, np.ndarray) and bad.any():
                    ctx.active &= ~bad  # ZeroDivisionError lanes freeze
                return a / b

            return run_div

        if kind in ("//", "%"):

            def run_intdiv(ctx, eff, lf=lf, rf=rf, kind=kind):
                a = _num(lf(ctx, eff))
                b = _num(rf(ctx, eff))
                if _is_float_like(a) or _is_float_like(b):
                    # Python's float // and % have fmod-based corner cases
                    # (inf operands -> nan) that numpy's floor variants do
                    # not replicate; punt to rows mode.
                    raise _VectorBailout("float floor-division/modulo")
                bad = eff & ctx.active & (b == 0)
                if isinstance(bad, np.ndarray) and bad.any():
                    ctx.active &= ~bad
                return np.floor_divide(a, b) if kind == "//" else np.remainder(a, b)

            return run_intdiv

        # shifts
        def run_shift(ctx, eff, lf=lf, rf=rf, left=(kind == "<<")):
            a = _num(lf(ctx, eff))
            b = _num(rf(ctx, eff))
            live = eff & ctx.active
            if isinstance(b, np.ndarray):
                bad = live & (b < 0)
                if bad.any():
                    ctx.active &= ~bad  # negative count raises ValueError
                    live = live & ~bad
                if bool((live & (b > 63)).any()):
                    raise _VectorBailout("shift count beyond 63")
                b = np.clip(b, 0, 63)
            else:
                if b < 0:
                    if live.any():
                        ctx.active &= ~live
                    return _num(a) * 0
                if b > 63:
                    raise _VectorBailout("shift count beyond 63")
            if left:
                res = a << b
                if isinstance(res, np.ndarray):
                    if bool((live & ((res >> b) != a)).any()):
                        raise _VectorBailout("left shift overflows int64")
                elif not (_I64_MIN <= res <= _I64_MAX):
                    raise _VectorBailout("left shift overflows int64")
                return res
            return a >> b

        return run_shift

    # -- composition specs (tree sites) ---------------------------------------

    def _tree_accepted(self, test) -> bool:
        """The instrumentation pass's own ceiling check (tier agreement)."""
        try:
            lowering = _TreeLowering(InstrumentationPass({}), 0)
            _, tokens = lowering.lower(test, negated=False)
        except _LoweringOverflow:
            return False
        return len(tokens) <= MAX_TREE_TOKENS

    def _build_spec(self, node, negated):
        """Mirror of ``_Specializer._build_spec``: same shapes, same leaf order."""
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.Not):
            return self._build_spec(node.operand, not negated)
        if isinstance(node, ast.BoolOp):
            is_and = isinstance(node.op, ast.And)
            if negated:
                is_and = not is_and
            return _Bool(is_and, [self._build_spec(v, negated) for v in node.values])
        if isinstance(node, ast.IfExp):
            return _Tern(
                self._build_spec(node.test, False),
                self._build_spec(node.body, negated),
                self._build_spec(node.orelse, negated),
            )
        if isinstance(node, ast.Compare) and all(type(op) in _AST_OPS for op in node.ops):
            if len(node.ops) == 1:
                op = _AST_OPS[type(node.ops[0])]
                if negated:
                    op = _NEGATED[op]
                return _Cmp(op, node.left, node.comparators[0], [])
            children = []
            lhs = node.left
            last = len(node.ops) - 1
            for index, (op_node, comparator) in enumerate(zip(node.ops, node.comparators)):
                op = _AST_OPS[type(op_node)]
                if negated:
                    op = _NEGATED[op]
                if index < last:
                    temp = self._temp()
                    pre = [(temp, comparator)]
                    rhs = ast.Name(id=temp, ctx=ast.Load())
                    next_lhs = ast.Name(id=temp, ctx=ast.Load())
                else:
                    pre = []
                    rhs = comparator
                    next_lhs = comparator  # unused
                children.append(_Cmp(op, lhs, rhs, pre))
                lhs = next_lhs
            return _Bool(not negated, children)
        return _Truth(node, negated)

    def _compile_spec(self, spec) -> Callable:
        """Closure ``(ctx, eff) -> (out, t, f, u)`` for one composition node."""
        if isinstance(spec, _Cmp):
            return self._compile_cmp_leaf(spec)
        if isinstance(spec, _Truth):
            return self._compile_truth_leaf(spec)
        if isinstance(spec, _Bool):
            return self._compile_bool(spec)
        if isinstance(spec, _Tern):
            return self._compile_ternary(spec)
        raise _Unvectorizable(f"unknown composition spec {spec!r}")

    def _compile_cmp_leaf(self, spec: _Cmp) -> Callable:
        lf = self._expr(spec.lhs)
        prefns = [(name, self._expr(value)) for name, value in spec.pre]
        rf = self._expr(spec.rhs)
        op = spec.op
        cmp = _CMP_FUNCS[op]
        eps = self.eps
        nan_t = 0.0 if op == "!=" else BIG_DISTANCE
        nan_f = BIG_DISTANCE if op == "!=" else 0.0

        def leaf(ctx, eff):
            # Probe argument order: lhs, then chain temporaries, then rhs.
            a = lf(ctx, eff)
            for name, fn in prefns:
                v = fn(ctx, eff)
                _store(ctx, name, v, eff & ctx.active)
            b = rf(ctx, eff)
            u = eff & ctx.active
            out = _as_bool_array(cmp(a, b), ctx.n)
            af = _f64(a, ctx.n)
            bf = _f64(b, ctx.n)
            nanm = (af != af) | (bf != bf)
            t, f = _pair_distances(op, af, bf, eps)
            t = np.where(nanm, nan_t, t)
            f = np.where(nanm, nan_f, f)
            return out, t, f, u

        return leaf

    def _compile_truth_leaf(self, spec: _Truth) -> Callable:
        vfn = self._expr(spec.value)
        neg = spec.negated
        eps = self.eps

        def leaf(ctx, eff):
            v = vfn(ctx, eff)
            u = eff & ctx.active
            tr = _truthy(v, ctx.n)
            out = ~tr if neg else tr
            if _is_bool_value(v):
                dt = np.where(tr, 0.0, eps)
                df = np.where(tr, eps, 0.0)
            else:
                conv = _f64(v, ctx.n)
                nanm = conv != conv
                dt = np.where(nanm, 0.0, np.where(conv != 0.0, 0.0, eps))
                df = np.where(nanm, BIG_DISTANCE, _squared_gap(conv, 0.0))
            if neg:
                return out, df, dt, u
            return out, dt, df, u

        return leaf

    def _compile_bool(self, spec: _Bool) -> Callable:
        child_fns = [self._compile_spec(c) for c in spec.children]
        is_and = spec.is_and

        def node(ctx, eff):
            n = ctx.n
            out = None
            t = f = u = None
            for index, cf in enumerate(child_fns):
                if index == 0:
                    m_i = eff & ctx.active
                else:
                    # Scalar short-circuit: later children run only on the
                    # surviving path (true lanes of an and, false of an or).
                    m_i = (eff & out if is_and else eff & ~out) & ctx.active
                if not m_i.any():
                    if index == 0:
                        z = np.zeros(n, dtype=np.float64)
                        return np.zeros(n, dtype=np.bool_), z, z, np.zeros(n, dtype=np.bool_)
                    break
                co, ct, cff, cu = cf(ctx, m_i)
                if index == 0:
                    out, t, f, u = co, ct, cff, cu
                    continue
                both = u & cu
                first = cu & ~u
                if is_and:
                    nt = t + ct
                    nf = np.where(cff < f, cff, f)
                else:
                    nt = np.where(ct < t, ct, t)
                    nf = f + cff
                t = np.where(both, nt, np.where(first, ct, t))
                f = np.where(both, nf, np.where(first, cff, f))
                u = u | cu
                out = (out & co) if is_and else (out | co)
            return out, t, f, u

        return node

    def _compile_ternary(self, spec: _Tern) -> Callable:
        cond_fn = self._compile_spec(spec.cond)
        body_fn = self._compile_spec(spec.body)
        orelse_fn = self._compile_spec(spec.orelse)

        def node(ctx, eff):
            co, ct, cf, cu = cond_fn(ctx, eff)
            live = eff & ctx.active
            bo, bt, bf, bu = body_fn(ctx, live & co)
            oo, ot, of_, ou = orelse_fn(ctx, live & ~co)
            cond = (ct, cf, cu)
            cond_swapped = (cf, ct, cu)
            # ``a if c else b`` composes as ``(c and a) or (not c and b)``;
            # the non-taken conjunct contributes nothing, so the fold is a
            # uniform per-lane formula selected by the condition outcome.
            rt = _vfold_pair(False, _vfold_pair(True, cond, (bt, bf, bu)),
                             _vfold_pair(True, cond_swapped, None))
            rf_ = _vfold_pair(False, _vfold_pair(True, cond, None),
                              _vfold_pair(True, cond_swapped, (ot, of_, ou)))
            t = np.where(co, rt[0], rf_[0])
            f = np.where(co, rt[1], rf_[1])
            u = np.where(co, rt[2], rf_[2])
            out = np.where(co, bo, oo)
            return out, t, f, u

        return node

    # -- probe sites -----------------------------------------------------------

    def _compile_if(self, node: ast.If) -> Callable:
        label = self.labels.get(id(node))
        body_fns = self._block(node.body)
        orelse_fns = self._block(node.orelse)
        if label is None:
            probe = self._compile_outcome_only(node.test)
        else:
            bits = (self.mask >> (label << 1)) & 3
            if bits == 3:
                # Def. 4.2(c): probe stripped, bare *lowered* test decides.
                probe = self._compile_outcome_only(node.test)
            else:
                probe = self._compile_probe(label, bits, node.test)

        def run(ctx, m):
            eff = m & ctx.active
            if not eff.any():
                return
            out = probe(ctx, eff)
            eff = eff & ctx.active
            m_t = eff & out
            m_f = eff & ~out
            if m_t.any():
                for fn in body_fns:
                    fn(ctx, m_t)
            if m_f.any():
                for fn in orelse_fns:
                    fn(ctx, m_f)

        return run

    def _compile_outcome_only(self, test) -> Callable:
        """The lowered branch outcome with every probe elided (bits == 3)."""
        simple = as_simple_comparison(test)
        if simple is not None:
            op, lhs, rhs, _negated = simple  # op already negation-folded
            lf = self._expr(lhs)
            rf = self._expr(rhs)
            cmp = _CMP_FUNCS[op]
            return lambda ctx, eff: _as_bool_array(cmp(lf(ctx, eff), rf(ctx, eff)), ctx.n)
        stripped, _ = strip_not(test)
        if isinstance(stripped, (ast.BoolOp, ast.IfExp)) or is_chain(stripped):
            if self._tree_accepted(test):
                spec_fn = self._compile_spec(self._build_spec(test, False))
                return lambda ctx, eff: spec_fn(ctx, eff)[0]
        # Truth fallback sites branch on the original value's truthiness.
        vfn = self._expr(test)
        return lambda ctx, eff: _truthy(vfn(ctx, eff), ctx.n)

    def _compile_probe(self, label, bits, test) -> Callable:
        simple = as_simple_comparison(test)
        if simple is not None:
            op, lhs, rhs, _negated = simple
            return self._compile_simple_site(label, bits, op, lhs, rhs)
        stripped, _ = strip_not(test)
        if isinstance(stripped, (ast.BoolOp, ast.IfExp)) or is_chain(stripped):
            if self._tree_accepted(test):
                return self._compile_tree_site(label, bits, test)
        return self._compile_truth_site(label, bits, test)

    def _compile_simple_site(self, label, bits, op, lhs, rhs) -> Callable:
        lf = self._expr(lhs)
        rf = self._expr(rhs)
        cmp = _CMP_FUNCS[op]
        eps = self.eps
        if bits != 0:
            op_eff = op if bits == 1 else _NEGATED[op]
            if bits == 1:
                nan_r = 0.0 if op == "!=" else BIG_DISTANCE
            else:
                nan_r = BIG_DISTANCE if op == "!=" else 0.0

        def probe(ctx, eff):
            a = lf(ctx, eff)
            b = rf(ctx, eff)
            eff = eff & ctx.active
            out = _as_bool_array(cmp(a, b), ctx.n)
            # Covered bit first, like FastRuntime.test (before any distance).
            _update_cov(ctx, label, out, eff)
            if bits == 0:
                ctx.r = np.where(eff, 0.0, ctx.r)
            else:
                af = _f64(a, ctx.n)
                bf = _f64(b, ctx.n)
                nanm = (af != af) | (bf != bf)
                dist = _branch_distance(op_eff, af, bf, eps)
                ctx.r = np.where(eff, np.where(nanm, nan_r, dist), ctx.r)
            return out

        return probe

    def _compile_truth_site(self, label, bits, test) -> Callable:
        vfn = self._expr(test)
        eps = self.eps

        def probe(ctx, eff):
            v = vfn(ctx, eff)
            eff = eff & ctx.active
            out = _truthy(v, ctx.n)
            if bits == 0:
                ctx.r = np.where(eff, 0.0, ctx.r)
            elif _is_bool_value(v):
                if bits == 1:
                    dist = np.where(out, 0.0, eps)
                else:
                    dist = np.where(out, eps, 0.0)
                ctx.r = np.where(eff, dist, ctx.r)
            else:
                conv = _f64(v, ctx.n)
                nanm = conv != conv
                if bits == 1:
                    dist = np.where(conv != 0.0, 0.0, eps)
                    nan_r = 0.0
                else:
                    dist = _squared_gap(conv, 0.0)
                    nan_r = BIG_DISTANCE
                ctx.r = np.where(eff, np.where(nanm, nan_r, dist), ctx.r)
            _update_cov(ctx, label, out, eff)
            return out

        return probe

    def _compile_tree_site(self, label, bits, test) -> Callable:
        spec_fn = self._compile_spec(self._build_spec(test, False))

        def probe(ctx, eff):
            out, t, f, u = spec_fn(ctx, eff)
            eff = eff & ctx.active
            _update_cov(ctx, label, out, eff)
            if bits == 0:
                ctx.r = np.where(eff & u, 0.0, ctx.r)
            else:
                steer = t if bits == 1 else f
                ctx.r = np.where(eff & u, steer, ctx.r)
            return out

        return probe


def _is_float_like(v) -> bool:
    if isinstance(v, np.ndarray):
        return v.dtype == np.float64
    return isinstance(v, float)


# -- plan construction and the module-level kernel cache ---------------------------------


class _VectorPlan:
    """Compiled lane-masked closures for one (source, mask, epsilon) triple."""

    __slots__ = ("params", "stmts")

    def __init__(self, params, stmts):
        self.params = params
        self.stmts = stmts


def _collect_assigned(func_node) -> set[str]:
    names: set[str] = set()
    for node in ast.walk(func_node):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, ast.NamedExpr) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _build_plan(source, function_name, start_label, saturated_mask, epsilon, namespace):
    """Compile one unit into a vector plan, or raise :class:`_Unvectorizable`."""
    if np is None:
        raise _Unvectorizable("numpy is not available")
    tree = ast.parse(textwrap.dedent(source))
    func_node = None
    for stmt in tree.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == function_name:
            func_node = stmt
            break
    if func_node is None:
        raise _Unvectorizable(f"function {function_name!r} not found")
    func_node.decorator_list = []
    labels, _ = assign_labels(func_node, start=start_label)
    args = func_node.args
    if args.vararg or args.kwarg or args.kwonlyargs:
        raise _Unvectorizable("only plain positional parameters")
    params = [p.arg for p in (args.posonlyargs + args.args)]
    compiler = _VectorCompiler(labels, saturated_mask, epsilon, namespace)
    compiler.local_names = set(params) | _collect_assigned(func_node)
    stmts = compiler._block(func_node.body)
    return _VectorPlan(params, stmts)


#: Module-level batched-kernel plan cache, mirroring the scalar
#: specialization cache: (source sha256, function name, start label, mask,
#: epsilon) -> _VectorPlan | None (None = compiles to rows mode).
_BATCH_CACHE: dict[tuple, Optional[_VectorPlan]] = {}
_BATCH_CACHE_LOCK = threading.Lock()
_BATCH_CACHE_MAX = 1024
_BATCH_CACHE_STATS = {"hits": 0, "misses": 0, "evictions": 0}


def _plan_for(source, function_name, start_label, saturated_mask, epsilon, namespace):
    digest = hashlib.sha256(source.encode("utf-8")).hexdigest()
    key = (digest, function_name, start_label, saturated_mask, epsilon)
    with _BATCH_CACHE_LOCK:
        if key in _BATCH_CACHE:
            _BATCH_CACHE_STATS["hits"] += 1
            return _BATCH_CACHE[key]
        _BATCH_CACHE_STATS["misses"] += 1
    try:
        plan = _build_plan(
            source, function_name, start_label, saturated_mask, epsilon, namespace
        )
    except _Unvectorizable:
        plan = None
    with _BATCH_CACHE_LOCK:
        while len(_BATCH_CACHE) >= _BATCH_CACHE_MAX:
            _BATCH_CACHE.pop(next(iter(_BATCH_CACHE)))
            _BATCH_CACHE_STATS["evictions"] += 1
        _BATCH_CACHE[key] = plan
    return plan


def batched_cache_info() -> dict[str, int]:
    """Size and hit/miss/evict statistics of the batched-kernel cache."""
    with _BATCH_CACHE_LOCK:
        return {
            "entries": len(_BATCH_CACHE),
            "max_entries": _BATCH_CACHE_MAX,
            **_BATCH_CACHE_STATS,
        }


def clear_batched_cache() -> None:
    """Drop every cached batched-kernel plan and reset its statistics."""
    with _BATCH_CACHE_LOCK:
        _BATCH_CACHE.clear()
        for key in _BATCH_CACHE_STATS:
            _BATCH_CACHE_STATS[key] = 0


class BatchKernel:
    """One batched evaluator bound to a program's specialized variant.

    ``kernel(X)`` takes an ``(N, arity)`` float64 array and returns
    ``(r, covered)``: the raw ``(N,)`` penalty vector (callers clamp
    non-finite values exactly like the scalar tier) and the union of
    covered-branch bits over all rows.  ``mode`` is ``"vector"`` or
    ``"rows"``; a vector kernel that hits a non-replicable condition at run
    time demotes itself to rows **stickily** and re-evaluates the batch, so a
    result is always produced and always bit-identical to the scalar tier.
    """

    __slots__ = ("variant", "plan", "mode", "saturated_mask", "epsilon")

    def __init__(self, variant, plan: Optional[_VectorPlan]):
        self.variant = variant
        self.plan = plan
        self.mode = "vector" if plan is not None else "rows"
        self.saturated_mask = variant.saturated_mask
        self.epsilon = variant.epsilon

    def __call__(self, X):
        if self.mode == "vector":
            try:
                return self._run_vector(X)
            except Exception:
                # _VectorBailout, or any latent lane-parallel surprise: the
                # rows path is always correct, so demote permanently.
                self.mode = "rows"
        return self._run_rows(X)

    def _run_vector(self, X):
        X = np.ascontiguousarray(np.atleast_2d(np.asarray(X, dtype=np.float64)))
        n = X.shape[0]
        params = self.plan.params
        if X.shape[1] != len(params):
            raise ValueError(f"expected {len(params)} columns, got {X.shape[1]}")
        env = {p: np.ascontiguousarray(X[:, i]) for i, p in enumerate(params)}
        ctx = _Ctx(env, np.ones(n, dtype=np.bool_), np.full(n, 1.0), n)
        everyone = np.ones(n, dtype=np.bool_)
        with np.errstate(all="ignore"):
            for fn in self.plan.stmts:
                fn(ctx, everyone)
        return ctx.r, ctx.cov

    def _run_rows(self, X):
        variant = self.variant
        namespace = variant.namespace
        entry = variant.entry
        from repro.instrument.specialize import R_NAME as _r_name

        if np is not None:
            X = np.atleast_2d(np.asarray(X, dtype=np.float64))
            rows = X.tolist()
            out = np.empty(len(rows), dtype=np.float64)
        else:
            rows = [[float(v) for v in row] for row in X]
            out = [0.0] * len(rows)
        # Reset the covered bytearray once: bits accumulate across rows,
        # which is exactly the union summary the batched contract asks for.
        variant.covered[:] = bytes(2 * variant.n_conditionals)
        for i, row in enumerate(rows):
            namespace[_r_name] = 1.0
            try:
                entry(*row)
            except _SWALLOWED:
                pass
            out[i] = namespace[_r_name]
        return out, variant.covered_mask()


def build_batch_kernel(program, saturated_mask: int, epsilon: float = DEFAULT_EPSILON):
    """Build (or fetch from cache) the batched kernel for one program/mask.

    The scalar :class:`SpecializedVariant` is always built first: it is the
    rows-mode body, the bailout target, and the source of the namespace whose
    constants the vector plan embeds.  Vector compilation is attempted only
    for single-unit programs (helper calls cannot be lane-masked) and
    silently degrades to rows mode on any whitelist miss.
    """
    variant = program.specialize(saturated_mask, epsilon)
    plan = None
    if np is not None and len(program.units) == 1:
        source, function_name, start_label = program.units[0]
        plan = _plan_for(
            source,
            function_name,
            start_label,
            variant.saturated_mask,
            variant.epsilon,
            variant.namespace,
        )
    return BatchKernel(variant, plan)
