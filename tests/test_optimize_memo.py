"""Tests for the bit-pattern evaluation memo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.optimize.basinhopping import basinhopping
from repro.optimize.memo import BitPatternMemo


class CountingObjective:
    def __init__(self):
        self.calls = 0

    def __call__(self, x):
        self.calls += 1
        x = np.atleast_1d(x)
        return float(np.sum((x - 1.5) ** 2))


class TestBitPatternMemo:
    def test_repeated_points_served_from_cache(self):
        objective = CountingObjective()
        memo = BitPatternMemo(objective, arity=2)
        a = np.array([1.0, 2.0])
        first = memo(a)
        second = memo(np.array([1.0, 2.0]))
        assert first == second
        assert objective.calls == 1
        assert memo.hits == 1 and memo.misses == 1
        assert len(memo) == 1

    def test_bit_pattern_keying_distinguishes_signed_zero(self):
        objective = CountingObjective()
        memo = BitPatternMemo(objective, arity=1)
        memo(np.array([0.0]))
        memo(np.array([-0.0]))
        assert objective.calls == 2  # 0.0 and -0.0 have different bit patterns

    def test_nan_inputs_are_cacheable(self):
        calls = []

        def weird(x):
            calls.append(tuple(x))
            return 7.0

        memo = BitPatternMemo(weird, arity=1)
        nan = float("nan")
        assert memo(np.array([nan])) == 7.0
        assert memo(np.array([nan])) == 7.0
        assert len(calls) == 1  # same NaN bit pattern hits the cache

    def test_capacity_bound_respected(self):
        objective = CountingObjective()
        memo = BitPatternMemo(objective, arity=1, max_entries=3)
        for i in range(10):
            memo(np.array([float(i)]))
        assert len(memo) == 3
        # Uncached points still evaluate correctly.
        assert memo(np.array([9.0])) == objective(np.array([9.0]))

    def test_fifo_eviction_keeps_newest_entries(self):
        objective = CountingObjective()
        memo = BitPatternMemo(objective, arity=1, max_entries=3)
        for i in range(5):
            memo(np.array([float(i)]))
        assert memo.evictions == 2  # 0.0 and 1.0 aged out
        calls_before = objective.calls
        memo(np.array([4.0]))  # newest entry survived the evictions
        assert objective.calls == calls_before
        memo(np.array([0.0]))  # oldest entry was evicted: re-evaluates
        assert objective.calls == calls_before + 1

    def test_stats_counters(self):
        objective = CountingObjective()
        memo = BitPatternMemo(objective, arity=1, max_entries=2)
        for value in (1.0, 1.0, 2.0, 3.0, 3.0):
            memo(np.array([value]))
        stats = memo.stats()
        assert stats == {
            "hits": 2,
            "misses": 3,
            "evictions": 1,
            "entries": 2,
            "max_entries": 2,
        }

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="max_entries"):
            BitPatternMemo(CountingObjective(), arity=1, max_entries=0)

    def test_arity_mismatch_passes_through_uncached(self):
        objective = CountingObjective()
        memo = BitPatternMemo(objective, arity=3)
        value = memo(np.array([1.0]))  # pack fails; falls through
        assert value == objective(np.array([1.0]))
        assert len(memo) == 0

    def test_clear(self):
        memo = BitPatternMemo(CountingObjective(), arity=1)
        memo(np.array([1.0]))
        memo.clear()
        assert len(memo) == 0


class TestRowKeyContiguity:
    """Regression: batch keys must match scalar ``struct.pack`` keys even for
    transposed/strided views and non-float64 dtypes (``tobytes`` on such
    inputs used to produce differently laid-out bytes and mis-key the memo)."""

    def _scalar_keys(self, rows):
        import struct

        return [struct.pack(f"={len(row)}d", *row) for row in rows]

    def test_strided_view_keys_match_scalar_keys(self):
        memo = BitPatternMemo(CountingObjective(), arity=2)
        base = np.arange(12, dtype=np.float64).reshape(3, 4)
        X = base[:, ::2]  # logical rows [[0,2],[4,6],[8,10]], non-contiguous
        assert not X.flags["C_CONTIGUOUS"]
        assert memo.row_keys(X) == self._scalar_keys(X.tolist())

    def test_transposed_view_keys_match_scalar_keys(self):
        memo = BitPatternMemo(CountingObjective(), arity=3)
        X = np.arange(6, dtype=np.float64).reshape(3, 2).T  # (2, 3) transposed
        assert not X.flags["C_CONTIGUOUS"]
        assert memo.row_keys(X) == self._scalar_keys(X.tolist())

    def test_get_many_hits_scalar_entries_through_views(self):
        objective = CountingObjective()
        memo = BitPatternMemo(objective, arity=2)
        rows = [[0.0, 1.0], [2.0, 3.0], [4.0, 5.0]]
        for row in rows:
            memo(np.array(row))
        base = np.zeros((3, 4), dtype=np.float64)
        base[:, ::2] = rows
        values, missing = memo.get_many(base[:, ::2])
        assert missing == []
        assert values == [memo.func(np.array(r)) for r in rows]

    def test_put_many_through_view_serves_scalar_calls(self):
        objective = CountingObjective()
        memo = BitPatternMemo(objective, arity=2)
        X = np.arange(8, dtype=np.float64).reshape(2, 4)[:, ::2]
        memo.put_many(X, [0, 1], [10.0, 20.0])
        assert memo(np.array(X[0])) == 10.0
        assert memo(np.array(X[1])) == 20.0
        assert objective.calls == 0

    def test_non_float64_dtype_is_normalized(self):
        memo = BitPatternMemo(CountingObjective(), arity=2)
        memo(np.array([1.0, 2.0]))
        values, missing = memo.get_many(np.array([[1, 2]], dtype=np.int64))
        assert missing == [] and values[0] is not None


class TestBasinhoppingMemoization:
    @pytest.mark.parametrize("backend_kwargs", [{}, {"local_options": {"max_iterations": 30}}])
    def test_memoized_run_matches_unmemoized(self, backend_kwargs):
        results = {}
        counts = {}
        for memoize in (False, True):
            objective = CountingObjective()
            result = basinhopping(
                objective,
                np.array([8.0, -3.0]),
                n_iter=5,
                rng=np.random.default_rng(11),
                memoize=memoize,
                **backend_kwargs,
            )
            results[memoize] = (float(result.fun), tuple(float(v) for v in result.x), result.nfev)
            counts[memoize] = objective.calls
        assert results[True] == results[False]
        assert counts[True] <= counts[False]
