"""Tests for the descendant-branch analysis (Def. 3.2 support)."""

from __future__ import annotations

from repro.instrument.program import instrument
from repro.instrument.runtime import BranchId
from tests import sample_programs as sp


class TestPaperExample:
    """The control-flow graph of Fig. 3: l1 follows both arms of l0."""

    def test_l1_is_descendant_of_both_arms_of_l0(self, paper_foo_program):
        analysis = paper_foo_program.descendants
        assert 1 in analysis.descendant_conditionals(BranchId(0, True))
        assert 1 in analysis.descendant_conditionals(BranchId(0, False))

    def test_l1_has_no_descendants(self, paper_foo_program):
        analysis = paper_foo_program.descendants
        assert analysis.descendant_conditionals(BranchId(1, True)) == frozenset()
        assert analysis.descendant_conditionals(BranchId(1, False)) == frozenset()

    def test_descendant_branches_expand_both_outcomes(self, paper_foo_program):
        branches = paper_foo_program.descendant_branches(BranchId(0, True))
        assert branches == frozenset({BranchId(1, True), BranchId(1, False)})


class TestNesting:
    def test_inner_conditional_only_descends_from_enclosing_arm(self, nested_program):
        analysis = nested_program.descendants
        # Conditional 1 (y > 0) is nested in the true arm of conditional 0.
        assert 1 in analysis.descendant_conditionals(BranchId(0, True))
        assert 1 not in analysis.descendant_conditionals(BranchId(0, False))
        # Conditional 2 (y == 5) lives in the false arm.
        assert 2 in analysis.descendant_conditionals(BranchId(0, False))
        assert 2 not in analysis.descendant_conditionals(BranchId(0, True))


class TestEarlyReturn:
    def test_terminating_arm_has_no_following_descendants(self):
        program = instrument(sp.early_return)
        analysis = program.descendants
        # Taking the NaN guard's true arm returns immediately.
        assert analysis.descendant_conditionals(BranchId(0, True)) == frozenset()
        # The false arm falls through to the next conditional.
        assert 1 in analysis.descendant_conditionals(BranchId(0, False))


class TestLoops:
    def test_while_true_branch_reaches_itself(self):
        program = instrument(sp.loop_program)
        analysis = program.descendants
        loop_label = 0
        reach_true = analysis.descendant_conditionals(BranchId(loop_label, True))
        assert loop_label in reach_true  # the loop test can run again
        assert 1 in reach_true  # the conditional after the loop is reachable
        reach_false = analysis.descendant_conditionals(BranchId(loop_label, False))
        assert loop_label not in reach_false
        assert 1 in reach_false


class TestHelperMerging:
    def test_multi_function_analysis_covers_all_labels(self):
        program = instrument(sp.calls_helper, extra_functions=[sp.helper_goo])
        assert program.n_conditionals == 1  # only the helper has a conditional
        analysis = program.descendants
        assert BranchId(0, True) in analysis.reachable
        assert BranchId(0, False) in analysis.reachable
