"""Tests for the descendant-branch analysis (Def. 3.2 support)."""

from __future__ import annotations

import ast
import sys
import textwrap

import pytest

from repro.instrument.ast_pass import assign_labels, collect_conditionals, iter_child_blocks
from repro.instrument.cfg import DescendantAnalysis
from repro.instrument.program import instrument
from repro.instrument.runtime import BranchId
from tests import sample_programs as sp


def analyze(source: str) -> tuple[list[ast.stmt], DescendantAnalysis]:
    tree = ast.parse(textwrap.dedent(source))
    func = tree.body[0]
    labels, stmts = assign_labels(func)
    return stmts, DescendantAnalysis.from_function(func, labels)


class TestPaperExample:
    """The control-flow graph of Fig. 3: l1 follows both arms of l0."""

    def test_l1_is_descendant_of_both_arms_of_l0(self, paper_foo_program):
        analysis = paper_foo_program.descendants
        assert 1 in analysis.descendant_conditionals(BranchId(0, True))
        assert 1 in analysis.descendant_conditionals(BranchId(0, False))

    def test_l1_has_no_descendants(self, paper_foo_program):
        analysis = paper_foo_program.descendants
        assert analysis.descendant_conditionals(BranchId(1, True)) == frozenset()
        assert analysis.descendant_conditionals(BranchId(1, False)) == frozenset()

    def test_descendant_branches_expand_both_outcomes(self, paper_foo_program):
        branches = paper_foo_program.descendant_branches(BranchId(0, True))
        assert branches == frozenset({BranchId(1, True), BranchId(1, False)})


class TestNesting:
    def test_inner_conditional_only_descends_from_enclosing_arm(self, nested_program):
        analysis = nested_program.descendants
        # Conditional 1 (y > 0) is nested in the true arm of conditional 0.
        assert 1 in analysis.descendant_conditionals(BranchId(0, True))
        assert 1 not in analysis.descendant_conditionals(BranchId(0, False))
        # Conditional 2 (y == 5) lives in the false arm.
        assert 2 in analysis.descendant_conditionals(BranchId(0, False))
        assert 2 not in analysis.descendant_conditionals(BranchId(0, True))


class TestEarlyReturn:
    def test_terminating_arm_has_no_following_descendants(self):
        program = instrument(sp.early_return)
        analysis = program.descendants
        # Taking the NaN guard's true arm returns immediately.
        assert analysis.descendant_conditionals(BranchId(0, True)) == frozenset()
        # The false arm falls through to the next conditional.
        assert 1 in analysis.descendant_conditionals(BranchId(0, False))


class TestLoops:
    def test_while_true_branch_reaches_itself(self):
        program = instrument(sp.loop_program)
        analysis = program.descendants
        loop_label = 0
        reach_true = analysis.descendant_conditionals(BranchId(loop_label, True))
        assert loop_label in reach_true  # the loop test can run again
        assert 1 in reach_true  # the conditional after the loop is reachable
        reach_false = analysis.descendant_conditionals(BranchId(loop_label, False))
        assert loop_label not in reach_false
        assert 1 in reach_false


class TestMatchStatements:
    SOURCE = """
    def f(x):
        match int(x):
            case 0:
                if x > 0.25:
                    return 1
                return 0
            case _:
                if x < -1.0:
                    return -1
        if x > 100.0:
            return 7
        return 2
    """

    def test_conditionals_in_case_bodies_are_collected_in_source_order(self):
        stmts, _ = analyze(self.SOURCE)
        assert len(stmts) == 3
        assert [ast.unparse(s.test) for s in stmts] == ["x > 0.25", "x < -1.0", "x > 100.0"]

    def test_descendants_flow_through_match_cases(self):
        _, analysis = analyze(self.SOURCE)
        # Case 0's body returns on both arms, so nothing follows either.
        assert analysis.descendant_conditionals(BranchId(0, True)) == frozenset()
        assert analysis.descendant_conditionals(BranchId(0, False)) == frozenset()
        # Case _'s conditional falls through to the statement after the match.
        assert analysis.descendant_conditionals(BranchId(1, True)) == frozenset()
        assert 2 in analysis.descendant_conditionals(BranchId(1, False))
        # Conditionals of sibling cases are alternatives, not descendants.
        assert 1 not in analysis.descendant_conditionals(BranchId(0, False))

    def test_match_inside_conditional_arm(self):
        stmts, analysis = analyze(
            """
            def f(x):
                if x > 0.0:
                    match int(x):
                        case 1:
                            if x > 1.0:
                                return 1
                return 0
            """
        )
        assert len(stmts) == 2
        assert 1 in analysis.descendant_conditionals(BranchId(0, True))
        assert 1 not in analysis.descendant_conditionals(BranchId(0, False))


@pytest.mark.skipif(sys.version_info < (3, 11), reason="except* needs Python 3.11")
class TestTryStarStatements:
    SOURCE = """
    def f(x):
        try:
            if x > 1.0:
                raise ValueError("big")
        except* ValueError:
            if x > 2.0:
                return 2
        return 0
    """

    def test_conditionals_in_except_star_handlers_are_collected(self):
        stmts, _ = analyze(self.SOURCE)
        assert len(stmts) == 2
        assert [ast.unparse(s.test) for s in stmts] == ["x > 1.0", "x > 2.0"]

    def test_handler_conditionals_get_descendant_sets(self):
        _, analysis = analyze(self.SOURCE)
        assert BranchId(1, True) in analysis.reachable
        assert analysis.descendant_conditionals(BranchId(1, True)) == frozenset()


class TestWalkerSync:
    """collect_conditionals and the analysis share one child-block helper."""

    def test_every_collected_conditional_is_analyzed(self):
        source = """
        def f(x):
            with open("dev/null") as fh:
                if x > 0.0:
                    return 1
            try:
                while x < 10.0:
                    x = x * 2.0
            except ValueError:
                if x == 3.0:
                    return 3
            else:
                if x == 4.0:
                    return 4
            finally:
                if x == 5.0:
                    return 5
            match int(x):
                case 0:
                    if x != 0.5:
                        return 6
            return 0
        """
        stmts, analysis = analyze(source)
        assert len(stmts) == 6
        for label in range(len(stmts)):
            reach_true = analysis.descendant_conditionals(BranchId(label, True))
            reach_false = analysis.descendant_conditionals(BranchId(label, False))
            assert reach_true is not None and reach_false is not None

    def test_iter_child_blocks_source_order_for_try(self):
        (stmt,) = ast.parse(
            textwrap.dedent(
                """
                try:
                    a = 1
                except ValueError:
                    b = 2
                else:
                    c = 3
                finally:
                    d = 4
                """
            )
        ).body
        blocks = [ast.unparse(block[0]) for block in iter_child_blocks(stmt) if block]
        assert blocks == ["a = 1", "b = 2", "c = 3", "d = 4"]

    def test_collect_conditionals_order_matches_labels(self):
        source = """
        def f(x):
            match int(x):
                case 0:
                    if x > 1.0:
                        return 1
            if x > 2.0:
                return 2
            return 0
        """
        tree = ast.parse(textwrap.dedent(source))
        func = tree.body[0]
        stmts = collect_conditionals(func)
        labels, ordered = assign_labels(func)
        assert [labels[id(s)] for s in stmts] == [0, 1]
        assert ordered == stmts


class TestHelperMerging:
    def test_multi_function_analysis_covers_all_labels(self):
        program = instrument(sp.calls_helper, extra_functions=[sp.helper_goo])
        assert program.n_conditionals == 1  # only the helper has a conditional
        analysis = program.descendants
        assert BranchId(0, True) in analysis.reachable
        assert BranchId(0, False) in analysis.reachable
