"""Small floating-point programs shared by the test suite.

They live in a real module (not inside test functions) so that
``inspect.getsource`` -- which the instrumentation pass relies on -- works.
"""

from __future__ import annotations


def single_branch(x: float) -> int:
    """One conditional, two branches."""
    if x <= 1.0:
        return 0
    return 1


def paper_foo(x: float) -> int:
    """The two-conditional program of the paper's Fig. 3 / Table 1."""
    if x <= 1.0:
        x = x + 1.0
    y = x * x
    if y == 4.0:
        return 1
    return 0


def nested_branches(x: float, y: float) -> int:
    """Nested conditionals: the inner ones are descendants of the outer arm."""
    if x > 0.0:
        if y > 0.0:
            return 1
        return 2
    if y == 5.0:
        return 3
    return 4


def early_return(x: float) -> int:
    """A guard with an early return: later branches are not descendants of it."""
    if x != x:  # NaN check
        return -1
    if x >= 100.0:
        return 1
    return 0


def loop_program(x: float) -> float:
    """A while loop whose test is an instrumented conditional."""
    total = 0.0
    while x > 1.0:
        x = x * 0.5
        total = total + 1.0
    if total >= 10.0:
        return total
    return -total


def boolean_condition(x: float, y: float) -> int:
    """Conjunction and disjunction of comparisons (extension of Def. 3.1(b))."""
    if x > 0.0 and y > 0.0:
        return 1
    if x < -10.0 or y < -10.0:
        return 2
    return 3


def equality_chain(x: float) -> int:
    """Equality constraints at different magnitudes."""
    if x == 1024.0:
        return 1
    if x == -0.0078125:
        return 2
    return 0


def truthiness(x: float) -> int:
    """A non-comparison condition (promoted to ``!= 0`` by the runtime)."""
    flag = x > 3.0
    if flag:
        return 1
    return 0


def nested_boolean(x: float, y: float) -> int:
    """A nested Boolean tree like Fdlibm's ``ix < a or (ix == a and lx <= b)``."""
    if x < -1.0 or (x == 0.0 and y <= 5.0):
        return 1
    if (x > 2.0 or y > 2.0) and x + y < 100.0:
        return 2
    return 3


def demorgan(x: float, y: float) -> int:
    """``not`` over a Boolean tree (lowered by De Morgan)."""
    if not (x > 0.0 and y > 0.0):
        return 1
    if not (x > 10.0 or y > 10.0):
        return 2
    return 3


def chained_comparison(x: float, y: float) -> int:
    """Chained comparisons: each operand must be evaluated exactly once."""
    if 0.0 < x < 10.0:
        return 1
    if -5.0 <= x + y <= 5.0 != x:
        return 2
    return 3


def ternary_test(x: float, y: float) -> int:
    """A ternary conditional expression used as a test."""
    if (x > 1.0 if y > 0.0 else x < -1.0):
        return 1
    return 2


def mixed_leaves(x: float, y: float) -> int:
    """Boolean tree with a non-comparison leaf (promoted to ``!= 0``)."""
    flag = x * y
    if flag or x > 3.0:
        return 1
    if not (x != x or y <= -2.0):
        return 2
    return 3


def while_else_loop(x: float) -> float:
    """A ``while ... else`` loop: the else runs only on normal exhaustion."""
    total = 0.0
    while x > 1.0:
        x = x * 0.5
        total = total + 1.0
        if total > 80.0:
            break
    else:
        total = total - 0.5
    return total


def huge_int_guard(x: float) -> int:
    """Operands beyond float range: distances degrade to coverage-only."""
    n = int(abs(x)) + 10**400
    if n > 5:
        return 1
    return 0


def ternary_in_tree(x: float, y: float) -> int:
    """A ternary nested inside a Boolean tree (composition re-uses cond)."""
    if x > 0.0 and (y < 1.0 if x < 9.0 else y > 2.0):
        return 1
    return 0


def infeasible_inner(x: float) -> int:
    """The inner true branch is infeasible: y = x*x is never -1."""
    if x <= 1.0:
        x = x + 1.0
    y = x * x
    if y == -1.0:
        return 1
    return 0


def calls_helper(x: float) -> int:
    """Entry function delegating its only conditional to a helper (Sect. 5.3)."""
    return helper_goo(x)


def helper_goo(x: float) -> int:
    if x * x <= 0.25:
        return 1
    return 0


def raises_for_small(x: float) -> float:
    """Raises ZeroDivisionError for 0 < x < 1 (tests exception handling)."""
    if x > 0.0:
        return 1.0 / float(int(x))
    return 0.0


def three_dimensional(x: float, y: float, z: float) -> int:
    """Three inputs, a mix of inequality and equality constraints."""
    if x + y + z == 10.0:
        return 1
    if x * x + y * y > 100.0:
        if z < -5.0:
            return 2
        return 3
    return 4
