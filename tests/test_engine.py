"""Tests for the search-engine subsystem: scheduler, pools, determinism."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.baselines.random_testing import RandomTester
from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe, cover
from repro.engine.core import SearchEngine
from repro.engine.pool import (
    _origin_importable_in_child,
    _process_context,
    chunk_evenly,
    parallel_map,
    resolve_worker_mode,
)
from repro.engine.scheduler import StartScheduler, available_strategies
from repro.engine.worker import origin_is_picklable
from repro.experiments.runner import Profile, compare_tools, coverme_tool
from repro.fdlibm.k_cos import kernel_cos
from repro.fdlibm.s_tanh import fdlibm_tanh
from repro.instrument.program import (
    InstrumentationError,
    InstrumentedProgram,
    instrument,
)
from repro.instrument.signature import ProgramSignature
from tests import sample_programs as sp


def run_sets(target, n_workers, worker_mode, **overrides):
    config = CoverMeConfig(
        n_start=16, n_iter=3, seed=42, n_workers=n_workers, worker_mode=worker_mode, **overrides
    )
    result = cover(target, config)
    return result.covered, result.saturated, result.inputs


class TestSeededDeterminism:
    """Same seed => identical results for every worker count and mode."""

    @pytest.mark.parametrize("target", [sp.nested_branches, fdlibm_tanh, kernel_cos])
    def test_worker_counts_agree_thread(self, target):
        baseline = run_sets(target, 1, "auto")
        for n_workers in (2, 4):
            assert run_sets(target, n_workers, "thread") == baseline

    def test_process_workers_agree_with_serial(self):
        baseline = run_sets(fdlibm_tanh, 1, "serial")
        assert run_sets(fdlibm_tanh, 4, "process") == baseline

    def test_all_modes_agree(self):
        serial = run_sets(sp.three_dimensional, 1, "serial")
        assert run_sets(sp.three_dimensional, 2, "thread") == serial
        assert run_sets(sp.three_dimensional, 2, "process") == serial

    def test_strategies_are_deterministic_but_distinct(self):
        per_strategy = {}
        for strategy in available_strategies():
            first = run_sets(sp.nested_branches, 1, "auto", start_strategy=strategy)
            again = run_sets(sp.nested_branches, 1, "auto", start_strategy=strategy)
            assert first == again
            per_strategy[strategy] = first
        # Different strategies draw different starting points.
        starts = {
            strategy: tuple(inputs[:1]) for strategy, (_, _, inputs) in per_strategy.items()
        }
        assert len(set(starts.values())) > 1


class TestStartScheduler:
    signature = ProgramSignature(name="s", arity=3, low=(-2.0, 0.0, 5.0), high=(2.0, 1.0, 9.0))

    def test_batch_shapes(self):
        for strategy in available_strategies():
            scheduler = StartScheduler(self.signature, strategy=strategy, root_seed=1)
            points = scheduler.batch(0, 0, 6)
            assert points.shape == (6, 3)
            assert np.all(np.isfinite(points))

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown start strategy"):
            StartScheduler(self.signature, strategy="sobol")

    def test_per_point_strategies_independent_of_batching(self):
        for strategy in ("random-normal", "signature-box"):
            scheduler = StartScheduler(self.signature, strategy=strategy, root_seed=3)
            whole = scheduler.batch(0, 0, 8)
            left = scheduler.batch(0, 0, 5)
            right = scheduler.batch(1, 5, 3)
            assert np.array_equal(np.vstack([left, right]), whole)

    def test_box_strategies_respect_bounds(self):
        low = np.asarray(self.signature.low)
        high = np.asarray(self.signature.high)
        for strategy in ("signature-box", "latin-hypercube"):
            scheduler = StartScheduler(self.signature, strategy=strategy, root_seed=5)
            points = scheduler.batch(0, 0, 16)
            assert np.all(points >= low) and np.all(points <= high)

    def test_latin_hypercube_stratifies_each_dimension(self):
        scheduler = StartScheduler(self.signature, strategy="latin-hypercube", root_seed=7)
        count = 10
        points = scheduler.batch(0, 0, count)
        low = np.asarray(self.signature.low)
        high = np.asarray(self.signature.high)
        unit = (points - low) / (high - low)
        for dim in range(3):
            strata = np.floor(unit[:, dim] * count).astype(int)
            assert sorted(strata) == list(range(count))

    def test_seed_changes_points(self):
        a = StartScheduler(self.signature, root_seed=1).batch(0, 0, 4)
        b = StartScheduler(self.signature, root_seed=2).batch(0, 0, 4)
        assert not np.array_equal(a, b)


class TestWorkerModeResolution:
    def test_picklable_origin_resolves_to_process(self):
        program = instrument(sp.paper_foo)
        assert resolve_worker_mode(program, "auto", 4) == "process"

    def test_single_worker_is_serial(self):
        program = instrument(sp.paper_foo)
        assert resolve_worker_mode(program, "auto", 1) == "serial"

    def test_explicit_serial_never_escalates(self):
        program = instrument(sp.paper_foo)
        assert resolve_worker_mode(program, "serial", 4) == "serial"

    def test_local_function_falls_back_to_thread(self):
        def local_target(x: float) -> int:
            if x > 0.0:
                return 1
            return 0

        program = instrument(local_target)
        assert resolve_worker_mode(program, "auto", 2) == "thread"
        with pytest.raises(ValueError, match="picklable origin"):
            resolve_worker_mode(program, "process", 2)

    def test_originless_program_falls_back_to_serial(self):
        program = instrument(sp.paper_foo)
        bare = InstrumentedProgram(
            name=program.name,
            signature=program.signature,
            conditionals=program.conditionals,
            descendants=program.descendants,
            entry=program.entry,
            handle=program.handle,
        )
        assert bare.origin is None
        assert resolve_worker_mode(bare, "auto", 4) == "serial"
        # An *explicit* thread request must fail loudly, like "process" does,
        # instead of silently losing the parallelism the caller asked for.
        with pytest.raises(ValueError, match="no origin"):
            resolve_worker_mode(bare, "thread", 4)
        with pytest.raises(InstrumentationError):
            bare.clone()

    def test_unknown_mode_rejected(self):
        program = instrument(sp.paper_foo)
        with pytest.raises(ValueError, match="unknown worker mode"):
            resolve_worker_mode(program, "fiber", 2)


class TestProgramClone:
    def test_clone_has_independent_runtime_handle(self):
        program = instrument(sp.paper_foo, extra_functions=())
        clone = program.clone()
        assert clone is not program
        assert clone.handle is not program.handle
        assert clone.n_branches == program.n_branches
        _, r, record = clone.run((0.7,))
        assert record.covered

    def test_clone_preserves_extra_functions(self):
        program = instrument(sp.calls_helper, extra_functions=[sp.helper_goo])
        clone = program.clone()
        assert clone.n_branches == program.n_branches == 2
        _, _, record = clone.run((0.1,))
        assert record.covered


class TestEngineBehaviour:
    def test_engine_reuses_driver_tracker(self):
        coverme = CoverMe(sp.single_branch, CoverMeConfig(n_start=8, seed=0))
        result = coverme.run()
        assert coverme.tracker.covered >= set(result.covered)
        assert result.branch_coverage == 1.0

    def test_parallel_run_on_fdlibm_matches_acceptance_shape(self):
        config = CoverMeConfig(n_start=12, n_iter=2, seed=3, n_workers=4, worker_mode="thread")
        sequential = cover(fdlibm_tanh, CoverMeConfig(n_start=12, n_iter=2, seed=3))
        parallel = cover(fdlibm_tanh, config)
        assert parallel.covered == sequential.covered
        assert parallel.saturated == sequential.saturated

    def test_resolved_mode_exposed(self):
        engine = SearchEngine(
            instrument(sp.paper_foo), CoverMeConfig(n_start=4, seed=0, n_workers=2)
        )
        assert engine.resolved_mode == "process"

    def test_chunk_evenly(self):
        assert chunk_evenly([1, 2, 3, 4, 5], 2) == [[1, 2, 3], [4, 5]]
        assert chunk_evenly([1], 4) == [[1]]
        assert chunk_evenly([], 3) == []

    def test_parallel_map_preserves_order(self):
        items = list(range(20))
        assert parallel_map(lambda v: v * v, items, n_workers=4) == [v * v for v in items]
        assert parallel_map(lambda v: v + 1, items, n_workers=1) == [v + 1 for v in items]

    def test_parallel_map_honors_serial_and_rejects_typos(self):
        items = list(range(5))
        assert parallel_map(lambda v: v * 2, items, n_workers=4, mode="serial") == [
            v * 2 for v in items
        ]
        with pytest.raises(ValueError, match="unknown worker mode"):
            parallel_map(lambda v: v, items, n_workers=4, mode="proces")

    def test_main_module_origin_never_gets_process_workers(self):
        # A __main__-defined target (REPL, notebook) pickles fine by
        # module+qualname reference, but a spawn/forkserver child cannot
        # re-import it; "auto" must fall back to threads whenever fork is
        # not the chosen start method.  Simulate the REPL by publishing the
        # target in the real __main__ and the threaded parent (which forces
        # the non-fork context on POSIX) with a keeper thread.
        import sys

        def fake_target(x: float) -> int:
            if x > 0.0:
                return 1
            return 0

        main_mod = sys.modules["__main__"]
        fake_target.__module__ = "__main__"
        # Pickle looks functions up by __qualname__ within __module__;
        # instrument() finds them in source by __name__, which stays intact.
        fake_target.__qualname__ = "repro_engine_fake_target"
        setattr(main_mod, "repro_engine_fake_target", fake_target)
        gate = threading.Event()
        keeper = threading.Thread(target=gate.wait)
        keeper.start()
        try:
            program = instrument(fake_target)
            assert origin_is_picklable(program.origin)
            assert not _origin_importable_in_child(program.origin)
            assert _process_context().get_start_method() != "fork"
            assert resolve_worker_mode(program, "auto", 4) == "thread"
            with pytest.raises(ValueError, match="__main__"):
                resolve_worker_mode(program, "process", 4)
        finally:
            gate.set()
            keeper.join()
            delattr(main_mod, "repro_engine_fake_target")


class TestBatchedExperiments:
    def _profile(self) -> Profile:
        return Profile(
            name="tiny",
            n_start=8,
            n_iter=2,
            max_cases=2,
            coverme_time_budget=None,
            baseline_execution_factor=1,
            baseline_min_executions=200,
        )

    def test_compare_tools_batched_matches_sequential(self):
        factories = {
            "CoverMe": lambda profile: coverme_tool(profile),
            "Rand": lambda profile: RandomTester(seed=profile.seed + 1),
        }
        profile = self._profile()
        sequential = compare_tools(factories, profile, n_workers=1)
        batched = compare_tools(factories, profile, n_workers=2)
        assert [row.case.function for row in sequential] == [
            row.case.function for row in batched
        ]
        for seq_row, par_row in zip(sequential, batched):
            for tool in ("CoverMe", "Rand"):
                assert seq_row.coverage(tool) == par_row.coverage(tool)
