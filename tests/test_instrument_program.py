"""Tests for InstrumentedProgram construction and execution."""

from __future__ import annotations

import pytest

from repro.instrument.program import (
    InstrumentationError,
    _CODE_CACHE,
    clear_compiled_cache,
    compiled_cache_info,
    instrument,
)
from repro.instrument.runtime import (
    BranchId,
    CoverageOutcome,
    ExecutionProfile,
    FastRuntime,
    Runtime,
)
from repro.instrument.signature import ProgramSignature
from tests import sample_programs as sp


class TestConstruction:
    def test_counts_conditionals_and_branches(self, paper_foo_program):
        assert paper_foo_program.n_conditionals == 2
        assert paper_foo_program.n_branches == 4
        assert paper_foo_program.all_branches == frozenset(
            {BranchId(0, True), BranchId(0, False), BranchId(1, True), BranchId(1, False)}
        )

    def test_signature_derived_from_parameters(self):
        program = instrument(sp.nested_branches)
        assert program.arity == 2
        assert program.signature.name == "nested_branches"

    def test_explicit_signature_is_used(self):
        signature = ProgramSignature(name="custom", arity=1, low=(-2.0,), high=(2.0,))
        program = instrument(sp.single_branch, signature=signature)
        assert program.signature.low == (-2.0,)

    def test_source_is_kept_for_inspection(self, paper_foo_program):
        assert "__coverme_rt__" in paper_foo_program.source

    def test_lambda_cannot_be_instrumented(self):
        with pytest.raises((InstrumentationError, ValueError)):
            instrument(lambda x: 1 if x > 0 else 0)

    def test_builtin_cannot_be_instrumented(self):
        with pytest.raises(InstrumentationError):
            instrument(abs)


class TestExecution:
    def test_run_returns_value_r_and_record(self, paper_foo_program):
        value, r, record = paper_foo_program.run((0.5,), runtime=Runtime())
        assert value == sp.paper_foo(0.5)
        assert r == 1.0
        assert record.covered == {BranchId(0, True), BranchId(1, False)}

    def test_run_uses_fresh_runtime_when_none_given(self, paper_foo_program):
        value, r, record = paper_foo_program.run((2.0,))
        assert value == sp.paper_foo(2.0)
        assert record.covered == {BranchId(0, False), BranchId(1, True)}

    def test_exceptions_in_program_are_swallowed(self):
        program = instrument(sp.raises_for_small)
        value, _, record = program.run((0.5,))  # 1.0 / 0 raises inside the program
        assert value is None
        assert BranchId(0, True) in record.covered  # branch before the fault recorded

    def test_helper_instrumentation_redirects_calls(self):
        program = instrument(sp.calls_helper, extra_functions=[sp.helper_goo])
        _, _, record = program.run((0.1,), runtime=Runtime())
        assert BranchId(0, True) in record.covered
        _, _, record = program.run((10.0,), runtime=Runtime())
        assert BranchId(0, False) in record.covered

    def test_original_function_is_not_mutated(self, paper_foo_program):
        # The module-level function keeps working without any runtime installed.
        assert sp.paper_foo(0.7) == 0
        assert sp.paper_foo(1.0) == 1


class TestProfiledExecution:
    def test_full_trace_returns_record(self, paper_foo_program):
        value, r, record = paper_foo_program.run_profiled((0.5,))
        assert value == sp.paper_foo(0.5)
        assert record.covered == {BranchId(0, True), BranchId(1, False)}

    def test_coverage_profile_returns_coverage_outcome(self, paper_foo_program):
        value, r, outcome = paper_foo_program.run_profiled(
            (0.5,), profile=ExecutionProfile.COVERAGE
        )
        assert value == sp.paper_foo(0.5)
        assert isinstance(outcome, CoverageOutcome)
        assert outcome.covered == {BranchId(0, True), BranchId(1, False)}
        assert outcome.last_conditional == 1
        assert outcome.last_outcome is False

    def test_penalty_profile_returns_flat_bitmask(self, paper_foo_program):
        from repro.instrument.runtime import branch_mask

        value, r, mask = paper_foo_program.run_profiled(
            (0.5,), profile=ExecutionProfile.PENALTY_ONLY
        )
        assert value == sp.paper_foo(0.5)
        assert isinstance(mask, int)
        assert mask == branch_mask({BranchId(0, True), BranchId(1, False)})

    def test_reused_runtime_keeps_configured_mask(self, paper_foo_program):
        """Regression: the mask default must not clobber a reused runtime's."""
        from repro.instrument.runtime import branch_mask

        mask = branch_mask(paper_foo_program.all_branches)
        runtime = FastRuntime(paper_foo_program.n_conditionals, saturated_mask=mask)
        _, r, _ = paper_foo_program.run_profiled(
            (0.5,), profile=ExecutionProfile.PENALTY_ONLY, runtime=runtime
        )
        # Everything saturated: pen case (c) keeps r at 1, and the runtime's
        # configured mask survives the call.
        assert r == 1.0
        assert runtime.saturated_mask == mask

    def test_profiles_agree_on_coverage(self, paper_foo_program):
        for x in (0.5, 1.0, -3.0, 7.7):
            _, r_trace, record = paper_foo_program.run_profiled((x,))
            _, r_fast, outcome = paper_foo_program.run_profiled(
                (x,), profile=ExecutionProfile.COVERAGE
            )
            assert outcome.covered == frozenset(record.covered)
            # The fast runtime hardwires CoverMe's pen: with an empty
            # saturation mask every conditional is case (a), so r is 0; the
            # recording default (policy=None) leaves r at 1.
            assert r_trace == 1.0
            assert r_fast == 0.0

    def test_explicit_fast_runtime_is_reused(self, paper_foo_program):
        runtime = FastRuntime(paper_foo_program.n_conditionals)
        paper_foo_program.run_profiled(
            (0.5,), profile=ExecutionProfile.PENALTY_ONLY, runtime=runtime
        )
        paper_foo_program.run_profiled(
            (2.0,), profile=ExecutionProfile.PENALTY_ONLY, runtime=runtime
        )
        assert runtime.total_evaluations == 2

    def test_exceptions_swallowed_in_fast_profile(self):
        program = instrument(sp.raises_for_small)
        value, _, outcome = program.run_profiled((0.5,), profile=ExecutionProfile.COVERAGE)
        assert value is None
        assert BranchId(0, True) in outcome.covered


class TestCompiledCodeCache:
    def test_reinstrumenting_same_source_hits_cache(self):
        clear_compiled_cache()
        first = instrument(sp.paper_foo)
        entries_after_first = compiled_cache_info()["entries"]
        second = instrument(sp.paper_foo)
        assert compiled_cache_info()["entries"] == entries_after_first
        # Cached artifacts are shared; namespaces and handles are not.
        assert first.entry is not second.entry
        assert first.handle is not second.handle
        assert first.conditionals == second.conditionals

    def test_clone_shares_compiled_code(self):
        clear_compiled_cache()
        program = instrument(sp.nested_branches)
        entries = compiled_cache_info()["entries"]
        clone = program.clone()
        assert compiled_cache_info()["entries"] == entries
        assert clone.entry.__code__ is not None
        # Clones execute independently (separate handles).
        _, _, record = clone.run((1.0, 1.0), runtime=Runtime())
        assert record.covered

    def test_cache_key_includes_start_label(self):
        """The same helper at a different label offset must compile separately."""
        clear_compiled_cache()
        # paper_foo has 2 conditionals, so helper_goo compiles at start label 2.
        offset = instrument(sp.paper_foo, extra_functions=[sp.helper_goo])
        assert offset.conditionals[-1].label == 2
        entries = compiled_cache_info()["entries"]
        # helper_goo alone starts at label 0: a distinct cache entry.
        program = instrument(sp.helper_goo)
        assert compiled_cache_info()["entries"] == entries + 1
        assert program.conditionals[0].label == 0

    def test_cached_programs_behave_identically(self):
        clear_compiled_cache()
        uncached = instrument(sp.loop_program)
        cached = instrument(sp.loop_program)
        for x in (0.5, 9.0, 1.0e6):
            assert cached.run((x,))[0] == uncached.run((x,))[0] == sp.loop_program(x)

    def test_clear_compiled_cache(self):
        instrument(sp.paper_foo)
        assert compiled_cache_info()["entries"] >= 1
        clear_compiled_cache()
        assert compiled_cache_info()["entries"] == 0
        assert _CODE_CACHE == {}


class TestSignature:
    def test_rejects_zero_arity(self):
        with pytest.raises(ValueError):
            ProgramSignature(name="bad", arity=0)

    def test_bounds_must_match_arity(self):
        with pytest.raises(ValueError):
            ProgramSignature(name="bad", arity=2, low=(0.0,), high=(1.0,))

    def test_from_callable_counts_positional_parameters(self):
        signature = ProgramSignature.from_callable(sp.three_dimensional)
        assert signature.arity == 3
        assert len(signature.low) == 3


class TestFallbackReport:
    """Distance-blind conditionals are observable via fallback_conditionals."""

    def test_complete_lowering_reports_no_fallbacks(self):
        for func in (sp.paper_foo, sp.nested_boolean, sp.demorgan, sp.ternary_test,
                     sp.chained_comparison, sp.mixed_leaves, sp.truthiness):
            program = instrument(func)
            assert program.fallback_conditionals == (), func.__name__

    def test_oversized_tree_is_reported(self):
        from repro.instrument.ast_pass import instrument_source

        clauses = " or ".join(f"x > {i}.0" for i in range(70))
        _, conds, _, _ = instrument_source(
            f"def f(x):\n    if {clauses}:\n        return 1\n    return 0\n"
        )
        assert [c.form for c in conds] == ["truth"]

    def test_conditional_forms_histogram(self):
        program = instrument(sp.ternary_test)
        assert program.conditional_forms() == {"ternary": 1}
        program = instrument(sp.truthiness)
        assert program.conditional_forms() == {"promoted": 1}
