"""Tests for InstrumentedProgram construction and execution."""

from __future__ import annotations

import pytest

from repro.instrument.program import InstrumentationError, instrument
from repro.instrument.runtime import BranchId, Runtime
from repro.instrument.signature import ProgramSignature
from tests import sample_programs as sp


class TestConstruction:
    def test_counts_conditionals_and_branches(self, paper_foo_program):
        assert paper_foo_program.n_conditionals == 2
        assert paper_foo_program.n_branches == 4
        assert paper_foo_program.all_branches == frozenset(
            {BranchId(0, True), BranchId(0, False), BranchId(1, True), BranchId(1, False)}
        )

    def test_signature_derived_from_parameters(self):
        program = instrument(sp.nested_branches)
        assert program.arity == 2
        assert program.signature.name == "nested_branches"

    def test_explicit_signature_is_used(self):
        signature = ProgramSignature(name="custom", arity=1, low=(-2.0,), high=(2.0,))
        program = instrument(sp.single_branch, signature=signature)
        assert program.signature.low == (-2.0,)

    def test_source_is_kept_for_inspection(self, paper_foo_program):
        assert "__coverme_rt__" in paper_foo_program.source

    def test_lambda_cannot_be_instrumented(self):
        with pytest.raises((InstrumentationError, ValueError)):
            instrument(lambda x: 1 if x > 0 else 0)

    def test_builtin_cannot_be_instrumented(self):
        with pytest.raises(InstrumentationError):
            instrument(abs)


class TestExecution:
    def test_run_returns_value_r_and_record(self, paper_foo_program):
        value, r, record = paper_foo_program.run((0.5,), runtime=Runtime())
        assert value == sp.paper_foo(0.5)
        assert r == 1.0
        assert record.covered == {BranchId(0, True), BranchId(1, False)}

    def test_run_uses_fresh_runtime_when_none_given(self, paper_foo_program):
        value, r, record = paper_foo_program.run((2.0,))
        assert value == sp.paper_foo(2.0)
        assert record.covered == {BranchId(0, False), BranchId(1, True)}

    def test_exceptions_in_program_are_swallowed(self):
        program = instrument(sp.raises_for_small)
        value, _, record = program.run((0.5,))  # 1.0 / 0 raises inside the program
        assert value is None
        assert BranchId(0, True) in record.covered  # branch before the fault recorded

    def test_helper_instrumentation_redirects_calls(self):
        program = instrument(sp.calls_helper, extra_functions=[sp.helper_goo])
        _, _, record = program.run((0.1,), runtime=Runtime())
        assert BranchId(0, True) in record.covered
        _, _, record = program.run((10.0,), runtime=Runtime())
        assert BranchId(0, False) in record.covered

    def test_original_function_is_not_mutated(self, paper_foo_program):
        # The module-level function keeps working without any runtime installed.
        assert sp.paper_foo(0.7) == 0
        assert sp.paper_foo(1.0) == 1


class TestSignature:
    def test_rejects_zero_arity(self):
        with pytest.raises(ValueError):
            ProgramSignature(name="bad", arity=0)

    def test_bounds_must_match_arity(self):
        with pytest.raises(ValueError):
            ProgramSignature(name="bad", arity=2, low=(0.0,), high=(1.0,))

    def test_from_callable_counts_positional_parameters(self):
        signature = ProgramSignature.from_callable(sp.three_dimensional)
        assert signature.arity == 3
        assert len(signature.low) == 3
