"""Tests for the instrumentation runtime (probes, r register, records)."""

from __future__ import annotations

import pytest

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.instrument.runtime import (
    BranchId,
    ConditionalOutcome,
    ExecutionRecord,
    Runtime,
    RuntimeHandle,
)


class ConstantPolicy:
    """Penalty policy that records calls and sets r to a constant."""

    def __init__(self, value=0.25):
        self.value = value
        self.calls = []

    def penalty(self, conditional, d_true, d_false, outcome, current_r):
        self.calls.append((conditional, d_true, d_false, outcome, current_r))
        return self.value


class TestBranchId:
    def test_ordering_and_sibling(self):
        branch = BranchId(3, True)
        assert branch.sibling == BranchId(3, False)
        assert BranchId(1, False) < BranchId(2, True)

    def test_repr(self):
        assert repr(BranchId(4, True)) == "4T"
        assert repr(BranchId(0, False)) == "0F"


class TestRuntimeProbes:
    def test_cmp_returns_outcome_and_records_on_resolve(self):
        rt = Runtime()
        rt.begin()
        outcome = rt.cmp(0, "<=", 1.0, 2.0)
        assert outcome is True
        assert rt.resolve(0, "single", outcome) is True
        r, record = rt.end()
        assert r == 1.0  # no policy installed
        assert record.covered == {BranchId(0, True)}

    def test_cmp_rejects_bad_operator(self):
        rt = Runtime()
        rt.begin()
        with pytest.raises(ValueError):
            rt.cmp(0, "?", 1.0, 2.0)

    def test_distances_reach_policy(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        rt.resolve(0, "single", rt.cmp(0, "==", 3.0, 5.0))
        assert len(policy.calls) == 1
        conditional, d_true, d_false, outcome, current_r = policy.calls[0]
        assert conditional == 0
        assert d_true == pytest.approx(4.0)
        assert d_false == 0.0
        assert outcome is False
        assert current_r == 1.0
        assert rt.r == 0.25

    def test_truth_promotes_numbers(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.truth(0, 3.5) is True
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == 0.0  # 3.5 != 0 holds
        assert d_false > 0.0

    def test_truth_with_non_numeric_records_coverage_only(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.truth(0, "nonempty") is True
        assert policy.calls == []  # no distance available, r untouched
        assert BranchId(0, True) in rt.record.covered

    def test_nan_operand_yields_large_distance(self):
        rt = Runtime()
        rt.begin()
        rt.resolve(0, "single", rt.cmp(0, "<=", float("nan"), 1.0))
        outcome = rt.record.path[0]
        assert outcome.outcome is False
        assert outcome.distance_true >= 1.0e300

    def test_and_composition_sums_true_distances(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        first = rt.cmp(0, ">", 0.0, 1.0)   # false, distance to true = 1 + eps
        second = rt.cmp(0, ">", -1.0, 1.0)  # false, distance to true = 4 + eps
        rt.resolve(0, "and", first and second)
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == pytest.approx(5.0 + 2 * DEFAULT_EPSILON)
        assert d_false == 0.0

    def test_or_composition_takes_min_true_distance(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        first = rt.cmp(0, ">", 0.0, 1.0)
        second = rt.cmp(0, ">", 0.5, 1.0)
        rt.resolve(0, "or", first or second)
        _, d_true, _, _, _ = policy.calls[0]
        assert d_true == pytest.approx(0.25 + DEFAULT_EPSILON)

    def test_begin_resets_state(self):
        rt = Runtime(policy=ConstantPolicy(0.5))
        rt.begin()
        rt.resolve(0, "single", rt.cmp(0, "==", 1.0, 2.0))
        assert rt.r == 0.5
        rt.begin()
        assert rt.r == 1.0
        assert rt.record.path == []

    def test_evaluation_counter(self):
        rt = Runtime()
        for _ in range(3):
            rt.begin()
            rt.end()
        assert rt.total_evaluations == 3


class TestExecutionRecord:
    def test_last_and_conditionals_executed(self):
        record = ExecutionRecord()
        assert record.last is None
        record.register(ConditionalOutcome(0, True, 0.0, 1.0))
        record.register(ConditionalOutcome(2, False, 3.0, 0.0))
        assert record.last.conditional == 2
        assert record.conditionals_executed() == {0, 2}
        assert record.covered == {BranchId(0, True), BranchId(2, False)}


class TestRuntimeHandle:
    def test_requires_installation(self):
        handle = RuntimeHandle()
        with pytest.raises(RuntimeError):
            handle.cmp(0, "<", 1.0, 2.0)

    def test_forwards_to_installed_runtime(self):
        handle = RuntimeHandle()
        rt = Runtime()
        handle.install(rt)
        rt.begin()
        assert handle.resolve(0, "single", handle.cmp(0, "<", 1.0, 2.0)) is True
        assert BranchId(0, True) in rt.record.covered
