"""Tests for the instrumentation runtimes (probes, r register, records)."""

from __future__ import annotations

import pytest

from repro.core.branch_distance import DEFAULT_EPSILON
from repro.instrument.runtime import (
    BranchId,
    ConditionalOutcome,
    ExecutionRecord,
    FastRuntime,
    Runtime,
    RuntimeHandle,
    branch_bit,
    branch_mask,
    branches_from_mask,
)


class ConstantPolicy:
    """Penalty policy that records calls and sets r to a constant."""

    def __init__(self, value=0.25):
        self.value = value
        self.calls = []

    def penalty(self, conditional, d_true, d_false, outcome, current_r):
        self.calls.append((conditional, d_true, d_false, outcome, current_r))
        return self.value


class TestBranchId:
    def test_ordering_and_sibling(self):
        branch = BranchId(3, True)
        assert branch.sibling == BranchId(3, False)
        assert BranchId(1, False) < BranchId(2, True)

    def test_repr(self):
        assert repr(BranchId(4, True)) == "4T"
        assert repr(BranchId(0, False)) == "0F"


class TestRuntimeProbes:
    def test_cmp_returns_outcome_and_records_on_resolve(self):
        rt = Runtime()
        rt.begin()
        outcome = rt.cmp(0, "<=", 1.0, 2.0)
        assert outcome is True
        assert rt.resolve(0, "single", outcome) is True
        r, record = rt.end()
        assert r == 1.0  # no policy installed
        assert record.covered == {BranchId(0, True)}

    def test_cmp_rejects_bad_operator(self):
        rt = Runtime()
        rt.begin()
        with pytest.raises(ValueError):
            rt.cmp(0, "?", 1.0, 2.0)

    def test_distances_reach_policy(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        rt.resolve(0, "single", rt.cmp(0, "==", 3.0, 5.0))
        assert len(policy.calls) == 1
        conditional, d_true, d_false, outcome, current_r = policy.calls[0]
        assert conditional == 0
        assert d_true == pytest.approx(4.0)
        assert d_false == 0.0
        assert outcome is False
        assert current_r == 1.0
        assert rt.r == 0.25

    def test_truth_promotes_numbers(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.truth(0, 3.5) is True
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == 0.0  # 3.5 != 0 holds
        assert d_false > 0.0

    def test_truth_with_non_numeric_records_coverage_only(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.truth(0, "nonempty") is True
        assert policy.calls == []  # no distance available, r untouched
        assert BranchId(0, True) in rt.record.covered

    def test_nan_operand_yields_large_distance(self):
        rt = Runtime()
        rt.begin()
        rt.resolve(0, "single", rt.cmp(0, "<=", float("nan"), 1.0))
        outcome = rt.record.path[0]
        assert outcome.outcome is False
        assert outcome.distance_true >= 1.0e300

    def test_and_composition_sums_true_distances(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        first = rt.cmp(0, ">", 0.0, 1.0)   # false, distance to true = 1 + eps
        second = rt.cmp(0, ">", -1.0, 1.0)  # false, distance to true = 4 + eps
        rt.resolve(0, "and", first and second)
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == pytest.approx(5.0 + 2 * DEFAULT_EPSILON)
        assert d_false == 0.0

    def test_or_composition_takes_min_true_distance(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        first = rt.cmp(0, ">", 0.0, 1.0)
        second = rt.cmp(0, ">", 0.5, 1.0)
        rt.resolve(0, "or", first or second)
        _, d_true, _, _, _ = policy.calls[0]
        assert d_true == pytest.approx(0.25 + DEFAULT_EPSILON)

    def test_begin_resets_state(self):
        rt = Runtime(policy=ConstantPolicy(0.5))
        rt.begin()
        rt.resolve(0, "single", rt.cmp(0, "==", 1.0, 2.0))
        assert rt.r == 0.5
        rt.begin()
        assert rt.r == 1.0
        assert rt.record.path == []

    def test_evaluation_counter(self):
        rt = Runtime()
        for _ in range(3):
            rt.begin()
            rt.end()
        assert rt.total_evaluations == 3


class TestFusedTestProbe:
    """The fused single-comparison probe must equal cmp + resolve('single')."""

    def test_matches_cmp_resolve_pair(self):
        for op, lhs, rhs in [("==", 3.0, 5.0), ("<", 1.0, 1.0), (">=", 2.0, -1.0)]:
            fused_policy, paired_policy = ConstantPolicy(), ConstantPolicy()
            fused, paired = Runtime(policy=fused_policy), Runtime(policy=paired_policy)
            fused.begin()
            paired.begin()
            assert fused.test(0, op, lhs, rhs) == paired.resolve(
                0, "single", paired.cmp(0, op, lhs, rhs)
            )
            assert fused_policy.calls == paired_policy.calls
            assert fused.record.covered == paired.record.covered
            assert fused.record.path[0].distance_true == paired.record.path[0].distance_true

    def test_rejects_bad_operator(self):
        rt = Runtime()
        rt.begin()
        with pytest.raises(ValueError):
            rt.test(0, "?", 1.0, 2.0)

    def test_no_pending_state_left_behind(self):
        rt = Runtime()
        rt.begin()
        rt.test(0, "<", 1.0, 2.0)
        assert rt._pending == {}


class TestTruthEdgeCases:
    def test_huge_int_falls_back_to_coverage_only(self):
        """Regression: int too large for float() must not crash the probe."""
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.truth(0, 10**400) is True
        assert policy.calls == []  # no usable distance, r untouched
        assert rt.r == 1.0
        assert BranchId(0, True) in rt.record.covered

    def test_huge_int_in_cmp_falls_back_to_coverage_only(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.test(0, "<", 10**400, 1) is False
        assert policy.calls == []
        assert BranchId(0, False) in rt.record.covered

    def test_bool_value_uses_epsilon_distances(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.truth(0, False) is False
        _, d_true, d_false, outcome, _ = policy.calls[0]
        assert d_true == DEFAULT_EPSILON
        assert d_false == 0.0
        assert outcome is False

    @pytest.mark.parametrize("value,expected", [(None, False), ("", False), ([1], True), ({}, False)])
    def test_non_numeric_values_record_coverage_only(self, value, expected):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.truth(0, value) is expected
        assert policy.calls == []
        assert BranchId(0, expected) in rt.record.covered


class TestComposeShortCircuit:
    """Short-circuited parts of and/or tests must not contribute distances."""

    def test_and_short_circuit_uses_only_evaluated_part(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        first = rt.cmp(0, ">", 0.0, 1.0)  # False: second operand never evaluated
        assert first is False
        rt.resolve(0, "and", first)
        _, d_true, d_false, outcome, _ = policy.calls[0]
        assert d_true == pytest.approx(1.0 + DEFAULT_EPSILON)
        assert d_false == 0.0
        assert outcome is False

    def test_or_short_circuit_uses_only_evaluated_part(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        first = rt.cmp(0, "<", 0.0, 1.0)  # True: second operand short-circuited
        assert first is True
        rt.resolve(0, "or", first)
        _, d_true, d_false, outcome, _ = policy.calls[0]
        assert d_true == 0.0
        assert d_false == pytest.approx(1.0 + DEFAULT_EPSILON)
        assert outcome is True

    def test_partially_usable_parts_compose_from_usable_only(self):
        """A non-numeric operand contributes nothing; the rest still composes."""
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        first = rt.cmp(0, ">", 10**400, 1)  # no usable distance
        second = rt.cmp(0, ">", 0.0, 1.0)
        rt.resolve(0, "and", first and second)
        _, d_true, _, _, _ = policy.calls[0]
        assert d_true == pytest.approx(1.0 + DEFAULT_EPSILON)  # only the second part

    def test_all_parts_unusable_leaves_r_alone(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        first = rt.cmp(0, ">", 10**400, 1)
        rt.resolve(0, "and", first)
        assert policy.calls == []
        assert rt.r == 1.0

    def test_unknown_mode_rejected(self):
        rt = Runtime()
        rt.begin()
        rt.cmp(0, "<", 1.0, 2.0)
        rt.cmp(0, "<", 2.0, 3.0)
        with pytest.raises(ValueError, match="unknown composition mode"):
            rt.resolve(0, "xor", True)

    def test_single_usable_part_skips_mode_check(self):
        """With one usable part the composition is that part, whatever the mode."""
        rt = Runtime()
        rt.begin()
        rt.cmp(0, "<", 1.0, 2.0)
        assert rt.resolve(0, "and", True) is True
        outcome = rt.record.path[0]
        assert outcome.distance_true == 0.0
        assert outcome.distance_false > 0.0


class TestBranchBitHelpers:
    def test_bit_roundtrip(self):
        branches = {BranchId(0, True), BranchId(3, False), BranchId(7, True)}
        assert branches_from_mask(branch_mask(branches)) == branches

    def test_bit_layout(self):
        assert branch_bit(0, False) == 0
        assert branch_bit(0, True) == 1
        assert branch_bit(5, False) == 10
        assert BranchId(5, True).bit == 11

    def test_empty_mask(self):
        assert branch_mask([]) == 0
        assert branches_from_mask(0) == frozenset()


class SaturatedStub:
    """Minimal stand-in for a SaturationTracker's saturated set."""

    def __init__(self, branches):
        self.saturated = frozenset(branches)


def _reference_r(saturated, script):
    """Run a probe script through Runtime + CoverMePenalty (the reference)."""
    from repro.core.pen import CoverMePenalty

    rt = Runtime(policy=CoverMePenalty(SaturatedStub(saturated)))
    rt.begin()
    script(rt)
    return rt.r, rt.record.covered


def _fast_r(saturated, script, n_conditionals=4):
    rt = FastRuntime(n_conditionals, saturated_mask=branch_mask(saturated))
    rt.begin()
    script(rt)
    return rt.r, rt.covered_branches()


class TestFastRuntimeEquivalence:
    """FastRuntime must compute bit-identical r to Runtime + CoverMePenalty."""

    SCRIPTS = [
        lambda rt: rt.test(0, "<=", 3.0, 1.0),
        lambda rt: rt.test(0, "==", 2.0, 2.0),
        lambda rt: (rt.test(0, ">", 5.0, 1.0), rt.test(1, "<", 5.0, 1.0)),
        lambda rt: rt.test(0, "!=", float("nan"), 1.0),
        lambda rt: rt.test(0, "<", float("nan"), 1.0),
        lambda rt: rt.truth(1, 7.5),
        lambda rt: rt.truth(1, 0),
        lambda rt: rt.truth(1, True),
        lambda rt: rt.truth(1, "opaque"),
        lambda rt: rt.truth(1, 10**400),
        lambda rt: rt.test(2, ">=", 10**400, 1),
        lambda rt: rt.resolve(3, "and", rt.cmp(3, ">", 0.0, 1.0)),
        lambda rt: rt.resolve(3, "or", rt.cmp(3, ">", 0.0, 1.0) or rt.cmp(3, ">", -1.0, 1.0)),
        # Composition programs: nested trees, negation, promoted leaves.
        lambda rt: rt.resolve(
            3, (0, 1, -4), rt.cmp(3, ">", 0.0, 1.0, 0) and rt.cmp(3, ">", 2.0, 1.0, 1)
        ),
        lambda rt: rt.resolve(
            2,
            (0, 1, 2, -4, -5),
            rt.cmp(2, "<", 3.0, 1.0, 0)
            or (rt.cmp(2, "==", 1.0, 1.0, 1) and rt.cmp(2, "<=", 2.0, 5.0, 2)),
        ),
        lambda rt: rt.resolve(
            2,
            (0, 1, 2, -4, -5),
            rt.cmp(2, "<", 0.0, 1.0, 0)  # true: the and-side short-circuits away
            or (rt.cmp(2, "==", 1.0, 1.0, 1) and rt.cmp(2, "<=", 2.0, 5.0, 2)),
        ),
        lambda rt: rt.resolve(1, (0, -1), rt.tleaf(1, 0, 2.5, True)),
        lambda rt: rt.resolve(1, (0, 1, -5), rt.tleaf(1, 0, 0.0) or rt.cmp(1, ">", 4.0, 1.0, 1)),
        lambda rt: rt.resolve(1, (0, 1, -4), rt.tleaf(1, 0, "opaque") and rt.cmp(1, ">", 4.0, 1.0, 1)),
        # Ternary shape: the condition leaf 0 is referenced on both sides.
        lambda rt: rt.resolve(
            0,
            (0, 1, -4, 0, -1, 2, -4, -5),
            rt.cmp(0, ">", 2.0, 5.0, 1) if rt.cmp(0, ">", 1.0, 0.0, 0) else rt.cmp(0, "<", 1.0, 0.0, 2),
        ),
        lambda rt: rt.resolve(0, (0, 1, -4), rt.cmp(0, "!=", float("nan"), 1.0, 0) and rt.cmp(0, "<", 1.0, 2.0, 1)),
    ]

    @pytest.mark.parametrize("script_index", range(len(SCRIPTS)))
    def test_r_and_coverage_match_reference(self, script_index):
        script = self.SCRIPTS[script_index]
        all_branches = [BranchId(c, o) for c in range(4) for o in (False, True)]
        # Saturation states: empty, everything, and one-sided per conditional.
        states = [frozenset(), frozenset(all_branches)]
        for c in range(4):
            states.append(frozenset({BranchId(c, True)}))
            states.append(frozenset({BranchId(c, False)}))
        for saturated in states:
            expected = _reference_r(saturated, script)
            got = _fast_r(saturated, script)
            assert got == expected, f"saturated={set(saturated)}"

    def test_last_conditional_tracking(self):
        rt = FastRuntime(4)
        rt.begin()
        assert rt.last_conditional is None and rt.last_outcome is None
        rt.test(2, "<", 1.0, 2.0)
        assert rt.last_conditional == 2 and rt.last_outcome is True
        rt.truth(0, None)
        assert rt.last_conditional == 0 and rt.last_outcome is False

    def test_begin_resets_coverage_and_mask(self):
        rt = FastRuntime(2, saturated_mask=branch_mask({BranchId(0, True)}))
        rt.begin()
        rt.test(0, "<", 1.0, 2.0)
        assert rt.covered_branches() == {BranchId(0, True)}
        rt.begin(saturated_mask=0)
        assert rt.covered_branches() == frozenset()
        assert rt.saturated_mask == 0
        assert rt.r == 1.0
        assert rt.total_evaluations == 2

    def test_snapshot(self):
        rt = FastRuntime(2)
        rt.begin()
        rt.test(1, ">", 2.0, 1.0)
        snap = rt.snapshot()
        assert snap.covered == {BranchId(1, True)}
        assert snap.last_conditional == 1
        assert snap.last_outcome is True
        assert snap.covered_mask() == branch_mask({BranchId(1, True)})


class TestCompositionPrograms:
    """The postfix tree composition shared by both runtimes."""

    def test_and_program_matches_legacy_flat_compose(self):
        legacy, tree = Runtime(policy=ConstantPolicy()), Runtime(policy=ConstantPolicy())
        legacy.begin()
        tree.begin()
        legacy.resolve(0, "and", legacy.cmp(0, ">", 0.0, 1.0) and legacy.cmp(0, ">", -1.0, 1.0))
        tree.resolve(0, (0, 1, -4), tree.cmp(0, ">", 0.0, 1.0, 0) and tree.cmp(0, ">", -1.0, 1.0, 1))
        assert legacy.policy.calls == tree.policy.calls

    def test_nested_or_of_and(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        # false or (true and false): composed d_true = min(or-children t).
        outcome = rt.cmp(0, ">", 0.0, 1.0, 0) or (
            rt.cmp(0, ">", 2.0, 1.0, 1) and rt.cmp(0, ">", 0.5, 1.0, 2)
        )
        assert rt.resolve(0, (0, 1, 2, -4, -5), outcome) is False
        _, d_true, d_false, _, _ = policy.calls[0]
        # and-node: (0 + (0.25 + eps), min(eps-ish...)) ; or of that and leaf0.
        assert d_true == pytest.approx(0.25 + DEFAULT_EPSILON)
        assert d_false == 0.0

    def test_not_token_swaps_pair(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        outcome = not rt.cmp(0, ">", 0.0, 1.0, 0)
        assert rt.resolve(0, (0, -1), outcome) is True
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == 0.0
        assert d_false == pytest.approx(1.0 + DEFAULT_EPSILON)

    def test_unevaluated_leaves_contribute_nothing(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        outcome = rt.cmp(0, "<", 0.0, 1.0, 0) or (
            rt.cmp(0, ">", 2.0, 1.0, 1) and rt.cmp(0, ">", 0.5, 1.0, 2)
        )
        assert rt.resolve(0, (0, 1, 2, -4, -5), outcome) is True
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == 0.0
        assert d_false == pytest.approx(1.0 + DEFAULT_EPSILON)

    def test_all_leaves_unusable_keeps_r(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        rt.resolve(0, (0, 1, -4), rt.tleaf(0, 0, "a") and rt.tleaf(0, 1, [1]))
        assert policy.calls == []
        assert rt.r == 1.0
        assert BranchId(0, True) in rt.record.covered

    def test_malformed_program_rejected(self):
        rt = Runtime()
        rt.begin()
        rt.cmp(0, "<", 1.0, 2.0, 0)
        with pytest.raises(ValueError, match="malformed composition program"):
            rt.resolve(0, (0, 0, -4, -4), True)

    def test_fast_runtime_loop_iterations_do_not_leak_leaves(self):
        """A short-circuited later iteration must not reuse iteration-1 leaves."""
        for runtime in (
            Runtime(policy=ConstantPolicy()),
            FastRuntime(4),
        ):
            runtime.begin()
            # Iteration 1: both leaves evaluated (leaf 1 distance stashed).
            runtime.resolve(
                0, (0, 1, -5), runtime.cmp(0, ">", 2.0, 1.0, 0) or runtime.cmp(0, ">", 0.0, 1.0, 1)
            )
            # Iteration 2: leaf 0 true, leaf 1 short-circuited away.
            runtime.resolve(0, (0, 1, -5), runtime.cmp(0, ">", 3.0, 1.0, 0) or True)
        # Equivalence of the two runtimes on exactly this scenario:
        saturated = frozenset({BranchId(0, False)})

        def script(rt):
            rt.resolve(0, (0, 1, -5), rt.cmp(0, ">", 0.0, 1.0, 0) or rt.cmp(0, ">", 0.5, 1.0, 1))
            rt.resolve(0, (0, 1, -5), rt.cmp(0, ">", 3.0, 1.0, 0) or True)

        assert _fast_r(saturated, script) == _reference_r(saturated, script)

    def test_fast_runtime_stale_execution_leaves_invalidated(self):
        """Leaves stashed in a crashed execution never leak into the next one."""
        fast = FastRuntime(2)
        fast.begin()
        fast.cmp(0, ">", 5.0, 1.0, 0)  # execution "crashes" before resolve
        fast.begin()
        # Same conditional, no leaves evaluated this time: composing must see
        # nothing usable and keep r (mask: only false branch saturated).
        fast.saturated_mask = branch_mask({BranchId(0, False)})
        fast.resolve(0, (0, 1, -5), False)
        assert fast.r == 1.0


class TestTleafPromotion:
    def test_numeric_leaf_promotes_to_nonzero_distance(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.tleaf(0, 0, 3.0) is True
        rt.resolve(0, (0,), True)
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == 0.0
        assert d_false > 0.0

    def test_negated_leaf_swaps_outcome_and_distances(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.tleaf(0, 0, 3.0, True) is False
        rt.resolve(0, (0,), False)
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == pytest.approx(9.0)  # distance to ``3.0 == 0``
        assert d_false == 0.0

    def test_bool_leaf_uses_epsilon_distances(self):
        policy = ConstantPolicy()
        rt = Runtime(policy=policy)
        rt.begin()
        assert rt.tleaf(0, 0, False) is False
        rt.resolve(0, (0,), False)
        _, d_true, d_false, _, _ = policy.calls[0]
        assert d_true == DEFAULT_EPSILON
        assert d_false == 0.0

    def test_huge_int_leaf_is_unusable(self):
        rt = Runtime(policy=ConstantPolicy())
        rt.begin()
        assert rt.tleaf(0, 0, 10**400) is True
        rt.resolve(0, (0,), True)
        assert rt.policy.calls == []


class TestExecutionRecord:
    def test_last_and_conditionals_executed(self):
        record = ExecutionRecord()
        assert record.last is None
        record.register(ConditionalOutcome(0, True, 0.0, 1.0))
        record.register(ConditionalOutcome(2, False, 3.0, 0.0))
        assert record.last.conditional == 2
        assert record.conditionals_executed() == {0, 2}
        assert record.covered == {BranchId(0, True), BranchId(2, False)}


class TestRuntimeHandle:
    def test_requires_installation(self):
        handle = RuntimeHandle()
        with pytest.raises(RuntimeError):
            handle.cmp(0, "<", 1.0, 2.0)

    def test_forwards_to_installed_runtime(self):
        handle = RuntimeHandle()
        rt = Runtime()
        handle.install(rt)
        rt.begin()
        assert handle.resolve(0, "single", handle.cmp(0, "<", 1.0, 2.0)) is True
        assert BranchId(0, True) in rt.record.covered
