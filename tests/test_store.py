"""Tests for the content-addressed run store and its versioned serialization."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro.core.report import CoverMeResult, MinimizationTrace, ToolRunSummary
from repro.experiments.runner import ComparisonRow
from repro.fdlibm.suite import BENCHMARKS, case_by_key
from repro.instrument.runtime import BranchId
from repro.store import (
    SCHEMA_VERSION,
    JobKey,
    RunStore,
    SchemaVersionError,
    comparison_row_from_dict,
    comparison_row_to_dict,
    coverme_result_from_dict,
    coverme_result_to_dict,
    summary_from_dict,
    summary_to_dict,
)


def make_summary(**overrides) -> ToolRunSummary:
    defaults = dict(
        tool="Rand",
        program="ieee754_acos",
        n_branches=12,
        covered_branches=7,
        wall_time=0.125,
        executions=420,
        inputs=[(1.0, -2.5), (float("inf"), 0.0)],
        n_lines=30,
        covered_lines=21,
    )
    defaults.update(overrides)
    return ToolRunSummary(**defaults)


def make_key(**overrides) -> JobKey:
    defaults = dict(
        case_key="e_acos.c:ieee754_acos(double)",
        tool="Rand",
        source_hash="abc123",
        tool_fingerprint="t0",
        profile_fingerprint="p0",
        budget_fingerprint="b0",
        seed=0,
        measure_lines=False,
        domain="[[-1.0],[1.0]]",
        profile_name="smoke",
    )
    defaults.update(overrides)
    return JobKey(**defaults)


class TestSummarySerialization:
    def test_round_trip(self):
        summary = make_summary()
        data = summary_to_dict(summary)
        rebuilt = summary_from_dict(json.loads(json.dumps(data)))
        assert rebuilt == summary
        assert rebuilt.inputs[0] == (1.0, -2.5)
        assert rebuilt.inputs[1][0] == float("inf")

    def test_schema_rejection(self):
        data = summary_to_dict(make_summary())
        data["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(SchemaVersionError):
            summary_from_dict(data)
        data.pop("schema")
        with pytest.raises(SchemaVersionError):
            summary_from_dict(data)


class TestCoverMeResultSerialization:
    def make_result(self) -> CoverMeResult:
        return CoverMeResult(
            program="foo",
            inputs=[(0.5,), (2.0,)],
            n_branches=4,
            covered=frozenset({BranchId(0, True), BranchId(1, False)}),
            saturated=frozenset({BranchId(0, True)}),
            infeasible=frozenset(),
            evaluations=321,
            wall_time=1.5,
            n_starts_used=6,
            traces=[
                MinimizationTrace(
                    start=(0.0,), minimum_point=(1.0,), minimum_value=0.0, accepted=True
                )
            ],
        )

    def test_round_trip_drops_traces(self):
        result = self.make_result()
        data = coverme_result_to_dict(result)
        assert "traces" not in data
        rebuilt = coverme_result_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.covered == result.covered
        assert rebuilt.saturated == result.saturated
        assert rebuilt.infeasible == result.infeasible
        assert rebuilt.inputs == result.inputs
        assert rebuilt.evaluations == result.evaluations
        assert rebuilt.traces == []

    def test_schema_rejection(self):
        data = coverme_result_to_dict(self.make_result())
        data["schema"] = 99
        with pytest.raises(SchemaVersionError):
            coverme_result_from_dict(data)


class TestComparisonRowSerialization:
    def test_round_trip_resolves_case_through_suite(self):
        case = BENCHMARKS[0]
        row = ComparisonRow(
            case=case, n_branches=12, results={"Rand": make_summary(program=case.function)}
        )
        data = comparison_row_to_dict(row)
        rebuilt = comparison_row_from_dict(json.loads(json.dumps(data)))
        assert rebuilt.case is case
        assert rebuilt.n_branches == 12
        assert rebuilt.results["Rand"] == row.results["Rand"]

    def test_unknown_case_key_raises(self):
        case = BENCHMARKS[0]
        row = ComparisonRow(case=case, n_branches=12, results={})
        data = comparison_row_to_dict(row)
        data["case"] = "nope.c:nope(double)"
        with pytest.raises(KeyError):
            comparison_row_from_dict(data)
        assert case_by_key(case.key) is case


class TestJobKey:
    def test_profile_name_excluded_from_fingerprint(self):
        a = make_key(profile_name="smoke")
        b = make_key(profile_name="renamed")
        assert a.fingerprint() == b.fingerprint()

    def test_result_relevant_fields_change_fingerprint(self):
        base = make_key()
        assert base.fingerprint() != make_key(measure_lines=True).fingerprint()
        assert base.fingerprint() != make_key(domain="[[-2.0],[2.0]]").fingerprint()
        assert base.fingerprint() != make_key(budget_fingerprint="b1").fingerprint()
        assert base.fingerprint() != make_key(seed=1).fingerprint()
        assert base.fingerprint() != make_key(source_hash="other").fingerprint()

    def test_key_dict_round_trip(self):
        key = make_key()
        assert JobKey.from_dict(key.to_dict()) == key


class TestRunStore:
    def test_put_get_and_reload(self, tmp_path):
        root = tmp_path / "store"
        key = make_key()
        payload = {"summary": summary_to_dict(make_summary()), "tool_evaluations": None}
        with RunStore(root) as store:
            assert store.get(key) is None
            store.put(key, payload)
            assert store.get(key) == payload
            assert key in store
            assert len(store) == 1
        with RunStore(root) as reloaded:
            assert len(reloaded) == 1
            assert reloaded.get(key) == payload
            keys = [k for k, _ in reloaded.records()]
            assert keys == [key]

    def test_in_memory_store_is_not_persistent(self):
        store = RunStore(None)
        store.put(make_key(), {"summary": {}})
        assert not store.persistent
        assert len(store) == 1

    def test_torn_tail_line_is_skipped(self, tmp_path):
        root = tmp_path / "store"
        key = make_key()
        with RunStore(root) as store:
            store.put(key, {"summary": {}, "tool_evaluations": None})
        # Simulate a process killed mid-append: a truncated trailing record.
        with (root / "runs.jsonl").open("a") as handle:
            handle.write('{"schema": 1, "fingerprint": "dead", "key": {"case_')
        with RunStore(root) as reloaded:
            assert len(reloaded) == 1
            assert reloaded.get(key) is not None
        # Loading alone tolerates the torn tail without rewriting the file:
        # read-only consumers must not write even to repair.
        assert (root / "runs.jsonl").read_text().endswith('{"case_')

    def test_append_after_torn_tail_survives_the_next_load(self, tmp_path):
        """The first checkpoint after a kill-mid-write resume must not merge
        into the torn tail (it would be lost on the load after that)."""
        root = tmp_path / "store"
        first = make_key()
        with RunStore(root) as store:
            store.put(first, {"summary": {}, "tool_evaluations": None})
        with (root / "runs.jsonl").open("a") as handle:
            handle.write('{"schema": 1, "fingerprint": "dead", "key": {"case_')
        second = make_key(tool="AFL")
        with RunStore(root) as resumed:  # first put truncates the torn tail
            resumed.put(second, {"summary": {}, "tool_evaluations": None})
        with RunStore(root) as reloaded:
            assert len(reloaded) == 2
            assert reloaded.get(first) is not None
            assert reloaded.get(second) is not None

    def test_meta_schema_mismatch_rejected(self, tmp_path):
        root = tmp_path / "store"
        root.mkdir()
        (root / "meta.json").write_text(json.dumps({"schema": SCHEMA_VERSION + 7}))
        with pytest.raises(SchemaVersionError):
            RunStore(root)

    def test_open_for_reading_writes_nothing(self, tmp_path):
        # A store is materialized on the first put, never on open: pointing
        # a read-only consumer (`repro ls`/`render`) at a missing path or an
        # arbitrary existing directory must not mutate it.
        missing = tmp_path / "missing"
        RunStore(missing).close()
        assert not missing.exists()
        plain = tmp_path / "plain"
        plain.mkdir()
        (plain / "unrelated.txt").write_text("keep me")
        RunStore(plain).close()
        assert sorted(p.name for p in plain.iterdir()) == ["unrelated.txt"]
        with RunStore(plain) as store:
            store.put(make_key(), {"summary": {}})
        assert (plain / "meta.json").exists()
        assert (plain / "runs.jsonl").exists()

    def test_record_schema_mismatch_rejected(self, tmp_path):
        root = tmp_path / "store"
        with RunStore(root) as store:
            store.put(make_key(), {"summary": {}})
        text = (root / "runs.jsonl").read_text()
        (root / "runs.jsonl").write_text(text.replace('"schema":1', '"schema":0'))
        with pytest.raises(SchemaVersionError):
            RunStore(root)

    def test_get_satisfying_accepts_line_superset(self, tmp_path):
        store = RunStore(tmp_path / "store")
        lines_key = make_key(measure_lines=True)
        store.put(lines_key, {"summary": {"n_lines": 30}})
        branch_key = make_key(measure_lines=False)
        assert store.get(branch_key) is None
        assert store.get_satisfying(branch_key) == {"summary": {"n_lines": 30}}
        # The superset rule is one-directional: a branch-only record does
        # not satisfy a job that needs line coverage.
        other = make_key(tool="AFL", measure_lines=False)
        store.put(other, {"summary": {}})
        assert store.get_satisfying(dataclasses.replace(other, measure_lines=True)) is None
        store.close()

    def test_clear_drops_records_and_file(self, tmp_path):
        root = tmp_path / "store"
        store = RunStore(root)
        store.put(make_key(), {"summary": {}})
        assert store.clear() == 1
        assert len(store) == 0
        assert not (root / "runs.jsonl").exists()
        store.close()
        assert len(RunStore(root)) == 0

    def test_last_write_wins_on_duplicate_keys(self, tmp_path):
        root = tmp_path / "store"
        key = make_key()
        with RunStore(root) as store:
            store.put(key, {"summary": {"v": 1}})
            store.put(key, {"summary": {"v": 2}})
            assert store.get(key) == {"summary": {"v": 2}}
        with RunStore(root) as reloaded:
            assert reloaded.get(key) == {"summary": {"v": 2}}


class TestMultiProcessWriters:
    """The fcntl advisory lock makes concurrent multi-process appends safe."""

    def test_two_processes_hammer_one_store(self, tmp_path):
        import subprocess
        import sys
        from pathlib import Path

        root = tmp_path / "store"
        per_writer = 40
        script = (
            "import sys, json\n"
            f"sys.path.insert(0, {str(Path(__file__).resolve().parents[1] / 'src')!r})\n"
            "from repro.store import JobKey, RunStore\n"
            "writer, n, root = sys.argv[1], int(sys.argv[2]), sys.argv[3]\n"
            "store = RunStore(root)\n"
            "try:\n"
            "    for i in range(n):\n"
            "        key = JobKey(case_key=f'case-{writer}-{i}', tool='Rand',\n"
            "                     source_hash='s', tool_fingerprint='t',\n"
            "                     profile_fingerprint='p', seed=i)\n"
            "        # A payload long enough that an unguarded interleaved\n"
            "        # write would visibly tear the JSON line.\n"
            "        store.put(key, {'summary': {'writer': writer, 'i': i, 'pad': 'x' * 512}})\n"
            "finally:\n"
            "    store.close()\n"
        )
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", script, writer, str(per_writer), str(root)],
                stdout=subprocess.PIPE,
                stderr=subprocess.PIPE,
            )
            for writer in ("a", "b")
        ]
        for proc in procs:
            _, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()
        # Every line parses (no torn or merged appends) and every record of
        # both writers survives.
        lines = (root / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 2 * per_writer
        records = [json.loads(line) for line in lines]
        seen = {
            (rec["payload"]["summary"]["writer"], rec["payload"]["summary"]["i"])
            for rec in records
        }
        assert seen == {(w, i) for w in ("a", "b") for i in range(per_writer)}
        with RunStore(root) as reloaded:
            assert len(reloaded) == 2 * per_writer
