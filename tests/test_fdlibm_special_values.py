"""Special-value behaviour (inf, NaN, signed zero) of the Fdlibm port.

These are exactly the cases guarded by the high-word comparisons CoverMe has
to cover, so they double as a check that the special-case branches compute
the right thing when reached.
"""

from __future__ import annotations

import math

import pytest

from repro.fdlibm import suite

INF = float("inf")
NAN = float("nan")


def entry(name):
    return suite.get_case(name).entry


class TestInfinities:
    def test_exp(self):
        assert entry("ieee754_exp")(INF) == INF
        assert entry("ieee754_exp")(-INF) == 0.0
        assert entry("ieee754_exp")(1000.0) == INF  # overflow
        assert entry("ieee754_exp")(-1000.0) == 0.0  # underflow

    def test_tanh(self):
        assert entry("tanh")(INF) == 1.0
        assert entry("tanh")(-INF) == -1.0

    def test_sin_cos_of_inf_is_nan(self):
        assert math.isnan(entry("sin")(INF))
        assert math.isnan(entry("cos")(-INF))
        assert math.isnan(entry("tan")(INF))

    def test_log_of_zero_and_negative(self):
        assert entry("ieee754_log")(0.0) == -INF
        assert math.isnan(entry("ieee754_log")(-1.0))
        assert entry("ieee754_log")(INF) == INF

    def test_sqrt_of_negative_is_nan(self):
        assert math.isnan(entry("ieee754_sqrt")(-4.0))
        assert entry("ieee754_sqrt")(INF) == INF

    def test_cosh_sinh_overflow(self):
        assert entry("ieee754_cosh")(1000.0) == INF
        assert entry("ieee754_sinh")(1000.0) == INF
        assert entry("ieee754_sinh")(-1000.0) == -INF

    def test_hypot_with_inf(self):
        assert entry("ieee754_hypot")(INF, 1.0) == INF
        assert entry("ieee754_hypot")(1.0, -INF) == INF

    def test_atan_limits(self):
        assert entry("atan")(INF) == pytest.approx(math.pi / 2.0)
        assert entry("atan")(-INF) == pytest.approx(-math.pi / 2.0)

    def test_erf_limits(self):
        assert entry("erf")(INF) == 1.0
        assert entry("erf")(-INF) == -1.0
        assert entry("erfc")(INF) == 0.0
        assert entry("erfc")(-INF) == 2.0

    def test_bessel_at_inf(self):
        assert entry("ieee754_j0")(INF) == 0.0
        assert entry("ieee754_j1")(INF) == 0.0
        assert entry("ieee754_y0")(INF) == 0.0

    def test_pow_special_infinities(self):
        pow_ = entry("ieee754_pow")
        assert pow_(2.0, INF) == INF
        assert pow_(0.5, INF) == 0.0
        assert pow_(2.0, -INF) == 0.0
        assert math.isnan(pow_(1.0, INF))  # fdlibm 5.3 semantics: 1**inf is NaN
        assert pow_(INF, 2.0) == INF
        assert pow_(-INF, 3.0) == -INF


class TestNaNs:
    @pytest.mark.parametrize(
        "name",
        [
            "ieee754_exp", "ieee754_log", "expm1", "log1p", "sin", "cos", "tan",
            "tanh", "atan", "ieee754_sinh", "ieee754_cosh", "asinh", "erf", "erfc",
            "floor", "ceil", "rint", "cbrt", "ieee754_sqrt", "logb", "ieee754_acos",
            "ieee754_asin", "ieee754_atanh", "ieee754_acosh",
        ],
    )
    def test_unary_nan_propagates(self, name):
        assert math.isnan(entry(name)(NAN))

    def test_binary_nan_propagates(self):
        assert math.isnan(entry("ieee754_fmod")(NAN, 2.0))
        assert math.isnan(entry("ieee754_fmod")(2.0, NAN))
        assert math.isnan(entry("ieee754_atan2")(NAN, 1.0))
        assert math.isnan(entry("ieee754_remainder")(1.0, NAN))
        assert math.isnan(entry("ieee754_pow")(NAN, 2.0))
        assert entry("ieee754_pow")(NAN, 0.0) == 1.0  # x**0 is 1 even for NaN

    def test_domain_errors_are_nan(self):
        assert math.isnan(entry("ieee754_asin")(2.0))
        assert math.isnan(entry("ieee754_acos")(-2.0))
        assert math.isnan(entry("ieee754_atanh")(2.0))
        assert math.isnan(entry("ieee754_acosh")(0.5))
        assert math.isnan(entry("ieee754_fmod")(1.0, 0.0))
        assert math.isnan(entry("ieee754_pow")(-2.0, 0.5))


class TestZerosAndEdges:
    def test_signed_zero_preserved(self):
        assert math.copysign(1.0, entry("floor")(-0.25)) == -1.0
        assert entry("cbrt")(0.0) == 0.0
        assert entry("ieee754_sqrt")(-0.0) == 0.0

    def test_atanh_at_one_is_inf(self):
        assert entry("ieee754_atanh")(1.0) == INF
        assert entry("ieee754_atanh")(-1.0) == -INF

    def test_y0_y1_at_zero(self):
        assert entry("ieee754_y0")(0.0) == -INF
        assert entry("ieee754_y1")(0.0) == -INF
        assert math.isnan(entry("ieee754_y0")(-1.0))

    def test_ilogb_and_logb_of_zero(self):
        assert entry("ilogb")(0.0) == -2147483648
        assert entry("logb")(0.0) == -INF

    def test_acos_asin_at_exact_one(self):
        assert entry("ieee754_acos")(1.0) == 0.0
        assert entry("ieee754_acos")(-1.0) == pytest.approx(math.pi)
        assert entry("ieee754_asin")(1.0) == pytest.approx(math.pi / 2.0)

    def test_scalb_non_integer_exponent_is_nan(self):
        assert math.isnan(entry("ieee754_scalb")(1.0, 0.5))

    def test_remainder_by_zero_is_nan(self):
        assert math.isnan(entry("ieee754_remainder")(1.0, 0.0))

    def test_nextafter_at_zero_crosses_to_subnormal(self):
        value = entry("nextafter")(0.0, 1.0)
        assert value > 0.0
        assert value == math.nextafter(0.0, 1.0)
