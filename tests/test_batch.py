"""Tests of the batched vectorized penalty tier (``instrument/batch.py``).

The contract under test is the one the engine relies on: one
:class:`~repro.instrument.batch.BatchKernel` call over an ``(N, arity)``
float64 array returns exactly the penalty vector that N scalar
``PENALTY_SPECIALIZED`` executions would return -- bit-for-bit, NaN and
infinity rows included, in both the whole-array **vector** mode and the
per-row **rows** fallback -- plus the union of their covered bits.  On top
of that sit the cache/epoch plumbing, the memo batch APIs, the
numpy-absence degradation, the vectorized-proposal optimizer path and the
engine-level identity of batched vs scalar runs.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.config import CoverMeConfig
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.engine.core import SearchEngine
from repro.experiments.runner import instrument_case
from repro.fdlibm.suite import BENCHMARKS
from repro.instrument import batch as batch_module
from repro.instrument.program import (
    clear_compiled_cache,
    compiled_cache_info,
    instrument,
)
from repro.instrument.runtime import ExecutionProfile
from repro.optimize.basinhopping import basinhopping
from repro.optimize.memo import BitPatternMemo
from tests import sample_programs as sp
from tests.test_specialize import PARITY_TARGETS

_SPECIAL_VALUES = (0.0, -0.0, float("nan"), float("inf"), -float("inf"), 1e308, 1e-320, 2.0)

#: Programs whose loops never terminate on +inf input (in every tier alike).
_NO_INF = (sp.loop_program, sp.while_else_loop)


def _bits(value: float) -> bytes:
    return struct.pack("=d", value)


def _point_rows(rng, target, arity: int, n_random: int) -> np.ndarray:
    specials = [s for s in _SPECIAL_VALUES if not (target in _NO_INF and s == float("inf"))]
    rows = [rng.normal(scale=5.0, size=arity) for _ in range(n_random)]
    rows += [[s] * arity for s in specials]
    return np.ascontiguousarray(rows, dtype=np.float64)


def _assert_batch_parity(program, mask: int, X: np.ndarray) -> None:
    kernel = program.batch_kernel(mask)
    r_batch, cov_batch = kernel(X)
    cov_expected = 0
    for i, row in enumerate(X):
        # .tolist() yields Python floats, matching the engine's scalar
        # coercion; numpy scalars would change the program's own
        # bool/float type checks.
        _, r_scalar, cov_scalar = program.run_specialized(row.tolist(), mask)
        cov_expected |= cov_scalar
        assert _bits(float(r_batch[i])) == _bits(r_scalar), (
            program.name,
            hex(mask),
            kernel.mode,
            row,
            float(r_batch[i]),
            r_scalar,
        )
    assert cov_batch == cov_expected, (program.name, hex(mask), kernel.mode)


class TestSampleFormParity:
    @pytest.mark.parametrize("target", PARITY_TARGETS, ids=lambda f: f.__name__)
    def test_bit_identical_over_random_masks(self, target):
        program = instrument(target)
        rng = np.random.default_rng(29)
        n = program.n_conditionals
        for _ in range(6):
            mask = int(rng.integers(0, 1 << (2 * n)))
            X = _point_rows(rng, target, program.arity, n_random=6)
            _assert_batch_parity(program, mask, X)

    def test_zero_mask_and_all_saturated_mask(self):
        for target in (sp.paper_foo, sp.nested_boolean, sp.chained_comparison):
            program = instrument(target)
            rng = np.random.default_rng(31)
            X = _point_rows(rng, target, program.arity, n_random=4)
            for mask in (0, (1 << (2 * program.n_conditionals)) - 1):
                _assert_batch_parity(program, mask, X)


class TestFdlibmSuiteParity:
    @pytest.mark.parametrize(
        "case", BENCHMARKS, ids=lambda c: c.function.split("(")[0]
    )
    def test_bit_identical_row_for_row(self, case):
        program = instrument_case(case)
        rng = np.random.default_rng(23)
        n_bits = 2 * program.n_conditionals
        rows = [rng.uniform(-50, 50, size=program.arity) for _ in range(8)]
        rows += [[s] * program.arity for s in _SPECIAL_VALUES]
        X = np.ascontiguousarray(rows, dtype=np.float64)
        for trial in range(3):
            mask = int(rng.integers(0, 1 << min(n_bits, 62))) if trial else 0
            _assert_batch_parity(program, mask, X)


class TestModeSelection:
    def test_vectorizable_suite_entries_compile_to_vector_mode(self):
        by_name = {c.function.split("(")[0]: c for c in BENCHMARKS}
        for name in ("floor", "nextafter", "expm1"):
            program = instrument_case(by_name[name])
            assert program.batch_kernel(0).mode == "vector", name

    def test_loops_and_helpers_fall_back_to_rows(self):
        for target in (sp.loop_program, sp.huge_int_guard):
            program = instrument(target)
            assert program.batch_kernel(0).mode == "rows", target.__name__
        # Multi-unit programs (instrumented helpers) always run per-row.
        multi = instrument(sp.calls_helper, extra_functions=[sp.helper_goo])
        assert multi.batch_kernel(0).mode == "rows"

    def test_simple_branch_is_vector(self):
        program = instrument(sp.paper_foo)
        assert program.batch_kernel(0).mode == "vector"


def trunc_overflows(x):
    k = int(x)
    if k > 10:
        return 1.0
    return 0.0


class TestRuntimeDemotion:
    def test_int64_overflow_demotes_to_rows_with_identical_values(self):
        """int() of a double >= 2**63 cannot be replicated in int64 lanes:
        the kernel bails out of vector mode mid-call, re-runs the batch
        through the per-row path and stays demoted (sticky)."""
        program = instrument(trunc_overflows)
        kernel = program.batch_kernel(0)
        assert kernel.mode == "vector"
        X = np.ascontiguousarray([[2.5], [1e19], [-3.0]], dtype=np.float64)
        _assert_batch_parity(program, 0, X)
        assert kernel.mode == "rows"
        # Still correct (and still one kernel) after demotion.
        _assert_batch_parity(program, 0, X)


class TestCaches:
    def test_program_kernel_cache_and_build_counter(self):
        program = instrument(sp.paper_foo)
        first = program.batch_kernel(0)
        assert program.batch_kernel(0) is first
        assert program.batched_kernel_builds == 1
        program.batch_kernel(3)
        assert program.batched_kernel_builds == 2

    def test_compiled_cache_info_reports_batched_and_clear_clears_it(self):
        clear_compiled_cache()
        info = compiled_cache_info()
        assert "batched" in info
        assert {"hits", "misses", "evictions", "entries"} <= set(info["batched"])
        baseline = compiled_cache_info()["batched"]["entries"]
        program = instrument(sp.paper_foo)
        program.batch_kernel(0)
        assert compiled_cache_info()["batched"]["entries"] > baseline
        clear_compiled_cache()
        after = compiled_cache_info()["batched"]
        assert after["entries"] == 0
        assert after["hits"] == 0 and after["misses"] == 0

    def test_module_cache_hits_across_program_instances(self):
        clear_compiled_cache()
        instrument(sp.paper_foo).batch_kernel(0)
        misses_before = compiled_cache_info()["batched"]["misses"]
        instrument(sp.paper_foo).batch_kernel(0)
        info = compiled_cache_info()["batched"]
        assert info["misses"] == misses_before
        assert info["hits"] >= 1


class TestRepresentingEvaluateBatch:
    def test_matches_scalar_calls_and_counts_evaluations(self):
        program = instrument(sp.paper_foo)
        tracker = SaturationTracker(program)
        batched = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        scalar = RepresentingFunction(
            program,
            SaturationTracker(program),
            profile=ExecutionProfile.PENALTY_SPECIALIZED,
        )
        rng = np.random.default_rng(5)
        X = _point_rows(rng, sp.paper_foo, program.arity, n_random=10)
        values = batched.evaluate_batch(X)
        assert batched.evaluations == X.shape[0]
        assert batched.batched_calls == 1
        assert batched.batch_respecializations == 1
        for i, row in enumerate(X):
            assert _bits(float(values[i])) == _bits(scalar(row))

    def test_epoch_protocol_rebuilds_only_on_mask_flip(self):
        program = instrument(sp.paper_foo)
        tracker = SaturationTracker(program)
        representing = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        X = np.ascontiguousarray([[4.0], [1.0]], dtype=np.float64)
        representing.evaluate_batch(X)
        representing.evaluate_batch(X)
        assert representing.batch_respecializations == 1
        builds = program.batched_kernel_builds
        # Flip a saturation bit: the next batch must pick up a new kernel.
        _, coverage = representing.evaluate_with_coverage([4.0])
        tracker.add_covered(set(coverage.covered))
        if tracker.saturated_mask != 0:
            representing.evaluate_batch(X)
            assert representing.batch_respecializations == 2
            assert program.batched_kernel_builds >= builds

    def test_non_specialized_profile_loops_per_row(self):
        program = instrument(sp.paper_foo)
        representing = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_ONLY
        )
        X = np.ascontiguousarray([[4.0], [0.0], [-1.0]], dtype=np.float64)
        values = representing.evaluate_batch(X)
        scalar = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_ONLY
        )
        for i, row in enumerate(X):
            assert _bits(float(values[i])) == _bits(scalar(row))


class TestNumpyAbsentDegradation:
    def test_falls_back_to_scalar_with_one_warning(self, monkeypatch):
        program = instrument(sp.paper_foo)
        representing = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        scalar = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        monkeypatch.setattr(batch_module, "np", None)
        monkeypatch.setattr(batch_module, "_WARNED", set())
        assert not batch_module.numpy_available()
        X = np.ascontiguousarray([[4.0], [0.5], [-2.0]], dtype=np.float64)
        with pytest.warns(RuntimeWarning, match="evaluate_batch"):
            values = representing.evaluate_batch(X)
        for i, row in enumerate(X):
            assert _bits(float(values[i])) == _bits(scalar(row))
        # Second batch: same values, no second warning.
        import warnings as _warnings

        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            representing.evaluate_batch(X)

    def test_build_batch_kernel_without_numpy_runs_rows(self, monkeypatch):
        program = instrument(sp.paper_foo)
        monkeypatch.setattr(batch_module, "np", None)
        kernel = batch_module.build_batch_kernel(program, 0)
        assert kernel.mode == "rows"
        r, cov = kernel([[4.0], [1.0]])
        _, r0, c0 = program.run_specialized([4.0], 0)
        _, r1, c1 = program.run_specialized([1.0], 0)
        assert [_bits(float(v)) for v in r] == [_bits(r0), _bits(r1)]
        assert cov == c0 | c1


class TestMemoBatchAPIs:
    def _make(self, calls):
        def func(x):
            calls.append(tuple(np.atleast_1d(x)))
            return float(np.sum(np.atleast_1d(x)) * 2.0)

        return BitPatternMemo(func, arity=2, max_entries=8)

    def test_get_many_put_many_roundtrip(self):
        calls = []
        memo = self._make(calls)
        X = np.ascontiguousarray([[1.0, 2.0], [3.0, -0.0], [float("nan"), 1.0]])
        values, missing = memo.get_many(X)
        assert values == [None, None, None] and missing == [0, 1, 2]
        memo.put_many(X, missing, [6.0, 6.0, 99.0])
        values, missing = memo.get_many(X)
        assert missing == [] and values == [6.0, 6.0, 99.0]
        assert memo.hits == 3 and memo.misses == 3
        # Row-bytes keys are interchangeable with the scalar struct.pack
        # keys: a scalar call at a stored row is a hit, -0.0 stays distinct
        # from 0.0 and NaN rows are cacheable.
        assert memo([1.0, 2.0]) == 6.0
        assert len(calls) == 0
        memo([3.0, 0.0])
        assert len(calls) == 1

    def test_evaluate_batch_serves_hits_and_fills_misses(self):
        calls = []
        memo = self._make(calls)
        X = np.ascontiguousarray([[1.0, 1.0], [2.0, 2.0]])
        first = memo.evaluate_batch(X)
        assert first == [4.0, 8.0] and len(calls) == 2
        X2 = np.ascontiguousarray([[1.0, 1.0], [5.0, 0.0]])
        second = memo.evaluate_batch(X2)
        assert second == [4.0, 10.0]
        assert len(calls) == 3  # only the new row executed

    def test_evaluate_batch_prefers_wrapped_batch_path(self):
        class Obj:
            def __init__(self):
                self.batched = 0

            def __call__(self, x):
                raise AssertionError("scalar path must not run")

            def evaluate_batch(self, X):
                self.batched += 1
                return [float(v[0]) for v in X]

        obj = Obj()
        memo = BitPatternMemo(obj, arity=1)
        out = memo.evaluate_batch(np.ascontiguousarray([[1.5], [2.5]]))
        assert out == [1.5, 2.5] and obj.batched == 1

    def test_seed_plants_value_without_counting(self):
        calls = []
        memo = self._make(calls)
        memo.seed([1.0, 2.0], 42.0)
        assert memo.hits == 0 and memo.misses == 0
        assert memo([1.0, 2.0]) == 42.0
        assert memo.hits == 1 and len(calls) == 0


class TestProposalPopulation:
    def _objective(self):
        program = instrument(sp.paper_foo)
        return RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_SPECIALIZED
        )

    def test_population_one_is_the_historical_trajectory(self):
        a = basinhopping(
            self._objective(), [3.0], n_iter=4, rng=np.random.default_rng(9), memoize=True
        )
        b = basinhopping(
            self._objective(),
            [3.0],
            n_iter=4,
            rng=np.random.default_rng(9),
            memoize=True,
            proposal_population=1,
        )
        assert a.fun == b.fun and tuple(a.x) == tuple(b.x) and a.nfev == b.nfev

    def test_batched_and_loop_screening_agree(self):
        results = []
        for use_batch in (True, False):
            objective = self._objective()
            if not use_batch:
                objective = objective.__call__  # plain callable: loop fallback
            result = basinhopping(
                objective,
                [3.0],
                n_iter=4,
                rng=np.random.default_rng(9),
                proposal_population=5,
            )
            results.append((result.fun, tuple(result.x), result.nfev))
        assert results[0] == results[1]

    def test_population_must_be_positive(self):
        with pytest.raises(ValueError):
            basinhopping(lambda x: 0.0, [1.0], proposal_population=0)
        with pytest.raises(ValueError):
            CoverMeConfig(proposal_population=0)


class TestEngineIdentity:
    def _run(self, target, *, batch_starts, n_workers, mode, profile, population=1):
        program = instrument(target)
        config = CoverMeConfig(
            n_start=16,
            n_iter=2,
            seed=13,
            eval_profile=profile,
            batch_starts=batch_starts,
            proposal_population=population,
            n_workers=n_workers,
            worker_mode=mode,
        )
        result = SearchEngine(program, config).run()
        return (
            tuple(result.inputs),
            result.covered,
            result.saturated,
            frozenset(result.infeasible),
            result.evaluations,
            result.n_starts_used,
            tuple(
                (t.start, t.minimum_point, t.minimum_value, t.accepted, t.evaluations)
                for t in result.traces
            ),
        )

    @pytest.mark.parametrize("target", (sp.paper_foo, sp.nested_boolean), ids=lambda f: f.__name__)
    def test_run_sets_identical_batched_vs_scalar(self, target):
        for n_workers, mode in ((1, "serial"), (3, "thread")):
            batched = self._run(
                target,
                batch_starts=True,
                n_workers=n_workers,
                mode=mode,
                profile="penalty-specialized",
            )
            scalar = self._run(
                target,
                batch_starts=False,
                n_workers=n_workers,
                mode=mode,
                profile="penalty-specialized",
            )
            generic = self._run(
                target, batch_starts=True, n_workers=n_workers, mode=mode, profile="penalty"
            )
            assert batched == scalar, (target.__name__, mode)
            assert batched == generic, (target.__name__, mode)

    def test_proposal_population_runs_and_covers(self):
        outcome = self._run(
            sp.paper_foo,
            batch_starts=True,
            n_workers=1,
            mode="serial",
            profile="penalty-specialized",
            population=4,
        )
        assert outcome[1]  # covered branches found
