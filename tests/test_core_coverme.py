"""End-to-end tests of the CoverMe driver (Algorithm 1)."""

from __future__ import annotations

import pytest

from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe, cover
from repro.instrument.program import instrument
from repro.instrument.runtime import BranchId
from tests import sample_programs as sp


class TestFullCoverage:
    def test_single_branch_program(self):
        result = cover(sp.single_branch, CoverMeConfig(n_start=20, seed=0))
        assert result.branch_coverage == 1.0
        assert result.fully_covered
        assert len(result.inputs) >= 2

    def test_paper_example(self):
        result = cover(sp.paper_foo, CoverMeConfig(n_start=40, seed=1))
        assert result.branch_coverage == 1.0
        # The equality branch requires x*x == 4 exactly (x in {-3, 1, 2} before increment).
        assert any(sp.paper_foo(x[0]) == 1 for x in result.inputs)

    def test_nested_branches_two_inputs(self):
        result = cover(sp.nested_branches, CoverMeConfig(n_start=60, seed=2))
        assert result.branch_coverage == 1.0

    def test_equality_chain_hits_exact_constants(self):
        result = cover(sp.equality_chain, CoverMeConfig(n_start=60, seed=3))
        assert result.branch_coverage == 1.0
        inputs = {x[0] for x in result.inputs}
        assert 1024.0 in inputs
        assert -0.0078125 in inputs

    def test_boolean_conditions_extension(self):
        result = cover(sp.boolean_condition, CoverMeConfig(n_start=80, seed=4))
        assert result.branch_coverage >= 0.75

    def test_loop_program(self):
        result = cover(sp.loop_program, CoverMeConfig(n_start=60, seed=5))
        assert result.branch_coverage >= 0.75

    def test_helper_function_instrumentation(self):
        coverme = CoverMe(
            sp.calls_helper,
            CoverMeConfig(n_start=30, seed=6),
            extra_functions=[sp.helper_goo],
        )
        result = coverme.run()
        assert result.n_branches == 2
        assert result.branch_coverage == 1.0

    def test_accepts_prebuilt_program(self):
        program = instrument(sp.single_branch)
        result = CoverMe(program, CoverMeConfig(n_start=10, seed=7)).run()
        assert result.program == "single_branch"
        assert result.branch_coverage == 1.0


class TestEarlyTermination:
    def test_stops_before_exhausting_starts_when_saturated(self):
        result = cover(sp.single_branch, CoverMeConfig(n_start=500, seed=8))
        assert result.n_starts_used < 500

    def test_respects_max_evaluations(self):
        config = CoverMeConfig(n_start=200, seed=9, max_evaluations=50)
        result = cover(sp.equality_chain, config)
        # The budget is checked between reduction steps, so it may be overshot
        # by at most one batch of trivially-cheap starts plus one real launch.
        assert result.n_starts_used <= config.effective_batch_size() + 1
        assert result.n_starts_used < config.n_start

    def test_respects_time_budget(self):
        config = CoverMeConfig(n_start=10000, seed=10, time_budget=0.2)
        result = cover(sp.equality_chain, config)
        assert result.wall_time < 5.0


class TestInfeasibleHeuristic:
    def test_infeasible_branch_detected_and_excluded_from_coverage(self):
        config = CoverMeConfig(n_start=60, seed=11)
        result = cover(sp.infeasible_inner, config)
        # The branch y == -1 can never be taken; everything else is covered.
        assert BranchId(1, True) not in result.covered
        assert result.branch_coverage == pytest.approx(0.75)
        assert BranchId(1, True) in result.infeasible

    def test_heuristic_can_be_disabled(self):
        config = CoverMeConfig(n_start=15, seed=12, mark_infeasible=False)
        result = cover(sp.infeasible_inner, config)
        assert result.infeasible == frozenset()


class TestBackendsAndMinimizers:
    @pytest.mark.parametrize("local_minimizer", ["powell", "nelder-mead", "compass"])
    def test_local_minimizer_choices(self, local_minimizer):
        config = CoverMeConfig(n_start=30, seed=13, local_minimizer=local_minimizer)
        result = cover(sp.paper_foo, config)
        assert result.branch_coverage >= 0.75

    def test_scipy_backend(self):
        config = CoverMeConfig(n_start=30, seed=14, backend="scipy")
        result = cover(sp.paper_foo, config)
        assert result.branch_coverage >= 0.75


class TestResultRecord:
    def test_traces_and_report(self):
        result = cover(sp.paper_foo, CoverMeConfig(n_start=40, seed=15))
        assert result.n_starts_used == len(result.traces)
        accepted = [t for t in result.traces if t.accepted]
        assert len(accepted) == len(result.inputs)
        report = result.coverage_report()
        assert report.branch_percent == result.branch_coverage_percent
        assert result.evaluations > 0

    def test_config_validation(self):
        with pytest.raises(ValueError):
            CoverMeConfig(n_start=0)
        with pytest.raises(ValueError):
            CoverMeConfig(backend="magic")
        with pytest.raises(ValueError):
            CoverMeConfig(epsilon=-1.0)

    def test_paper_and_smoke_profiles(self):
        assert CoverMeConfig.paper().n_start == 500
        assert CoverMeConfig.smoke().n_start < 100
