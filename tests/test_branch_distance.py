"""Unit and property tests for the Def. 4.1 branch distances."""

from __future__ import annotations

import math

import pytest
from hypothesis import assume, given, strategies as st

from repro.core.branch_distance import (
    DEFAULT_EPSILON,
    branch_distance,
    distance_pair,
    negate_op,
)

OPS = ["==", "!=", "<", "<=", ">", ">="]

finite_doubles = st.floats(allow_nan=False, allow_infinity=False, width=64)


def holds(op: str, a: float, b: float) -> bool:
    return {
        "==": a == b,
        "!=": a != b,
        "<": a < b,
        "<=": a <= b,
        ">": a > b,
        ">=": a >= b,
    }[op]


class TestDefinition:
    def test_equality_is_squared_gap(self):
        assert branch_distance("==", 3.0, 5.0) == pytest.approx(4.0)
        assert branch_distance("==", 5.0, 5.0) == 0.0

    def test_le_zero_when_satisfied(self):
        assert branch_distance("<=", 1.0, 2.0) == 0.0
        assert branch_distance("<=", 2.0, 2.0) == 0.0
        assert branch_distance("<=", 3.0, 2.0) == pytest.approx(1.0)

    def test_lt_adds_epsilon(self):
        assert branch_distance("<", 1.0, 2.0) == 0.0
        assert branch_distance("<", 2.0, 2.0) == pytest.approx(DEFAULT_EPSILON)
        assert branch_distance("<", 3.0, 2.0) == pytest.approx(1.0 + DEFAULT_EPSILON)

    def test_ne_is_epsilon_when_equal(self):
        assert branch_distance("!=", 2.0, 3.0) == 0.0
        assert branch_distance("!=", 3.0, 3.0) == pytest.approx(DEFAULT_EPSILON)

    def test_ge_gt_are_mirrors(self):
        assert branch_distance(">=", 5.0, 3.0) == branch_distance("<=", 3.0, 5.0)
        assert branch_distance(">", 3.0, 5.0) == branch_distance("<", 5.0, 3.0)

    def test_rejects_unknown_operator(self):
        with pytest.raises(ValueError):
            branch_distance("===", 1.0, 2.0)

    def test_rejects_non_positive_epsilon(self):
        with pytest.raises(ValueError):
            branch_distance("==", 1.0, 2.0, epsilon=0.0)

    def test_overflow_is_clamped_finite(self):
        value = branch_distance("==", 1.0e308, -1.0e308)
        assert math.isfinite(value)
        assert value > 0.0


class TestNegation:
    @pytest.mark.parametrize("op", OPS)
    def test_negation_is_involutive(self, op):
        assert negate_op(negate_op(op)) == op

    def test_negation_table(self):
        assert negate_op("==") == "!="
        assert negate_op("<") == ">="
        assert negate_op("<=") == ">"

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            negate_op("~")


def _squared_gap_underflows(a: float, b: float) -> bool:
    """True when ``(a-b)**2`` underflows to zero although ``a != b``.

    The paper's Def. 4.1 squares the operand gap, so for operands closer than
    about ``2**-538`` the distance degenerates to an exact zero.  Remark 6.1
    lists this floating-point inaccuracy as one cause of incompleteness; the
    property tests therefore exclude that regime and a dedicated test below
    documents it.
    """
    gap = a - b
    return gap != 0.0 and gap * gap == 0.0


class TestEquationEight:
    """Property (8): d >= 0 and d == 0 iff the comparison holds."""

    @given(op=st.sampled_from(OPS), a=finite_doubles, b=finite_doubles)
    def test_non_negative(self, op, a, b):
        assert branch_distance(op, a, b) >= 0.0

    @given(op=st.sampled_from(OPS), a=finite_doubles, b=finite_doubles)
    def test_zero_iff_satisfied(self, op, a, b):
        assume(not _squared_gap_underflows(a, b))
        distance = branch_distance(op, a, b)
        assert (distance == 0.0) == holds(op, a, b)

    @given(op=st.sampled_from(OPS), a=finite_doubles, b=finite_doubles)
    def test_pair_has_exactly_one_zero(self, op, a, b):
        assume(not _squared_gap_underflows(a, b))
        d_true, d_false = distance_pair(op, a, b)
        assert (d_true == 0.0) != (d_false == 0.0)

    def test_underflow_caveat_of_remark_6_1(self):
        """Operands closer than ~2**-538 make the ``==`` distance degenerate."""
        a, b = 0.0, 1.0e-300
        assert a != b
        assert branch_distance("==", a, b) == 0.0  # squared gap underflows

    @given(a=finite_doubles, b=finite_doubles, c=finite_doubles)
    def test_equality_distance_monotone_in_gap(self, a, b, c):
        """A larger |a-b| gap never yields a smaller ``==`` distance."""
        gap_small = min(abs(a - b), abs(a - c))
        gap_large = max(abs(a - b), abs(a - c))
        d_small = branch_distance("==", gap_small, 0.0)
        d_large = branch_distance("==", gap_large, 0.0)
        assert d_small <= d_large
