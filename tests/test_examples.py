"""The example scripts must at least compile; the quick ones must run."""

from __future__ import annotations

import pathlib
import py_compile
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


class TestExamplesCompile:
    @pytest.mark.parametrize("path", ALL_EXAMPLES, ids=[p.name for p in ALL_EXAMPLES])
    def test_compiles(self, path, tmp_path):
        py_compile.compile(str(path), cfile=str(tmp_path / (path.name + "c")), doraise=True)

    def test_expected_examples_present(self):
        names = {p.name for p in ALL_EXAMPLES}
        assert {"quickstart.py", "fdlibm_tanh.py", "tool_comparison.py", "infeasible_branches.py"} <= names


class TestQuickExamplesRun:
    def test_quickstart_runs(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "quickstart.py")],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert "branch coverage" in completed.stdout

    def test_tool_comparison_runs_on_one_case(self):
        completed = subprocess.run(
            [sys.executable, str(EXAMPLES_DIR / "tool_comparison.py"), "1"],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert completed.returncode == 0, completed.stderr
        assert "CoverMe" in completed.stdout
