"""Tests for the saturation-specialized penalty codegen tier.

The contract under test: for every saturation mask, the specialized variant
computes a bit-identical ``r`` to the generic runtimes, identical return
values, and identical covered bits for every conditional that is not
both-saturated (stripped probes record nothing by design); and the epoch
protocol recompiles only when the mask actually changes.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.experiments.runner import instrument_case
from repro.fdlibm.suite import BENCHMARKS
from repro.instrument import ast_pass
from repro.instrument.program import (
    InstrumentationError,
    clear_compiled_cache,
    compiled_cache_info,
    instrument,
)
from repro.instrument.runtime import ExecutionProfile, FastRuntime, Runtime
from tests import sample_programs as sp

#: Sample targets covering every lowered conditional form (simple, negated,
#: boolean trees, De Morgan, chains, ternary, promoted, loops, helpers).
PARITY_TARGETS = (
    sp.single_branch,
    sp.paper_foo,
    sp.nested_branches,
    sp.early_return,
    sp.loop_program,
    sp.boolean_condition,
    sp.equality_chain,
    sp.truthiness,
    sp.nested_boolean,
    sp.demorgan,
    sp.chained_comparison,
    sp.ternary_test,
    sp.mixed_leaves,
    sp.while_else_loop,
    sp.huge_int_guard,
    sp.ternary_in_tree,
    sp.three_dimensional,
    sp.raises_for_small,
)

_SPECIAL_VALUES = (0.0, -0.0, float("nan"), float("inf"), -float("inf"), 1e308, 2.0, 9.0)


def _bits(value: float) -> bytes:
    return struct.pack("=d", value)


def _run_fast(program, mask: int, args) -> tuple[object, float, int]:
    """Reference execution through the generic FastRuntime."""
    fast = FastRuntime(program.n_conditionals)
    program.handle.install(fast)
    fast.begin(mask)
    value: object = None
    try:
        value = program.entry(*args)
    except (ArithmeticError, ValueError, OverflowError):
        value = None
    return value, fast.r, fast.covered_mask()


def _unsaturated_bits(mask: int, covered: int, n_conditionals: int) -> int:
    """Restrict ``covered`` to conditionals that are not both-saturated."""
    out = 0
    for conditional in range(n_conditionals):
        if (mask >> (2 * conditional)) & 3 != 3:
            out |= ((covered >> (2 * conditional)) & 3) << (2 * conditional)
    return out


def _assert_parity(program, mask: int, args) -> None:
    value_ref, r_ref, covered_ref = _run_fast(program, mask, args)
    value_sp, r_sp, covered_sp = program.run_specialized(args, mask)
    assert _bits(r_sp) == _bits(r_ref), (program.name, hex(mask), args, r_sp, r_ref)
    same = value_sp == value_ref or (value_sp != value_sp and value_ref != value_ref)
    assert same, (program.name, hex(mask), args, value_sp, value_ref)
    expected = _unsaturated_bits(mask, covered_ref, program.n_conditionals)
    assert covered_sp == expected, (program.name, hex(mask), args)


class TestSpecializedParity:
    @pytest.mark.parametrize("target", PARITY_TARGETS, ids=lambda f: f.__name__)
    def test_bit_identical_over_random_masks(self, target):
        program = instrument(target)
        n = program.n_conditionals
        rng = np.random.default_rng(11)
        specials = [
            s
            for s in _SPECIAL_VALUES
            # loop_program halves x until <= 1: +inf would never terminate
            # (in every tier alike), so it stays out of the point set.
            if not (target is sp.loop_program and s == float("inf"))
        ]
        for _ in range(15):
            mask = int(rng.integers(0, 1 << (2 * n)))
            points = [list(rng.normal(scale=5.0, size=program.arity)) for _ in range(5)]
            points += [[s] * program.arity for s in specials]
            for point in points:
                _assert_parity(program, mask, [float(v) for v in point])

    def test_full_suite_conditional_forms(self):
        """Every suite entry's lowered forms, under empty/partial/full masks."""
        rng = np.random.default_rng(7)
        for case in BENCHMARKS:
            program = instrument_case(case)
            n = program.n_conditionals
            tracker = SaturationTracker(program)
            for _ in range(4):
                x = tuple(rng.normal(scale=100.0, size=program.arity))
                _, _, record = program.run(x, runtime=Runtime())
                tracker.add_execution(record)
            masks = (0, tracker.saturated_mask, (1 << (2 * n)) - 1)
            for mask in masks:
                for point in rng.normal(scale=50.0, size=(3, program.arity)):
                    _assert_parity(program, mask, [float(v) for v in point])

    def test_helper_functions_specialize_together(self):
        """Extra functions compile into the same specialized namespace."""
        program = instrument(sp.calls_helper, extra_functions=[sp.helper_goo])
        for mask in (0, 0b01, 0b11):
            for x in (-1.0, 0.1, 0.6, 7.0):
                _assert_parity(program, mask, [x])

    def test_stripped_sites_record_no_coverage(self):
        program = instrument(sp.paper_foo)
        full = (1 << (2 * program.n_conditionals)) - 1
        _, _, covered = program.run_specialized([0.5], full)
        assert covered == 0  # every probe stripped: bare branches only

    def test_truth_fallback_degrades_identically(self, monkeypatch):
        """When the AST pass declines a tree, the specializer must too."""
        clear_compiled_cache()
        try:
            monkeypatch.setattr(ast_pass, "MAX_TREE_TOKENS", 2)
            program = instrument(sp.nested_boolean)
            assert any(cond.form == "truth" for cond in program.conditionals)
            rng = np.random.default_rng(3)
            for _ in range(10):
                mask = int(rng.integers(0, 1 << (2 * program.n_conditionals)))
                for point in rng.normal(scale=5.0, size=(4, 2)):
                    _assert_parity(program, mask, [float(v) for v in point])
        finally:
            # The caches key on source digests, so entries built under the
            # patched ceiling must not leak into other tests.
            clear_compiled_cache()

    def test_pointwise_equal_to_penalty_profile(self):
        """RepresentingFunction values match across the fast tiers mid-search."""
        program = instrument(sp.nested_boolean)
        tracker = SaturationTracker(program)
        specialized = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        penalty = RepresentingFunction(program, tracker, profile=ExecutionProfile.PENALTY_ONLY)
        rng = np.random.default_rng(5)
        for index in range(120):
            x = rng.normal(scale=10.0, size=program.arity)
            assert _bits(specialized(x)) == _bits(penalty(x))
            if index % 30 == 29:  # evolve saturation mid-stream
                _, coverage = penalty.evaluate_with_coverage(x)
                tracker.add_covered(set(coverage.covered))


class TestEpochProtocol:
    def test_zero_recompiles_while_mask_unchanged(self):
        program = instrument(sp.paper_foo)
        tracker = SaturationTracker(program)
        representing = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        for x in np.linspace(-3.0, 3.0, 60):
            representing([float(x)])
        assert representing.respecializations == 1  # the initial variant only
        assert program.specialization_builds == 1

    def test_respecializes_exactly_on_saturation_flip(self):
        program = instrument(sp.paper_foo)
        tracker = SaturationTracker(program)
        representing = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        representing([0.7])
        assert (representing.respecializations, program.specialization_builds) == (1, 1)
        before = tracker.saturated_mask
        for x in (0.7, 1.0, 1.1, -5.2):
            _, _, record = program.run((x,), runtime=Runtime())
            tracker.add_execution(record)
        assert tracker.saturated_mask != before
        representing([0.7])
        representing([0.9])
        assert (representing.respecializations, program.specialization_builds) == (2, 2)

    def test_seen_masks_are_cache_hits(self):
        program = instrument(sp.paper_foo)
        first = program.specialize(0b0110)
        again = program.specialize(0b0110)
        assert first is again
        assert program.specialization_builds == 1

    def test_pen_cases_behave_like_fast_runtime(self):
        """r semantics across the three pen cases, driven through the tracker."""
        program = instrument(sp.paper_foo)
        tracker = SaturationTracker(program)
        representing = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        assert representing([0.7]) == 0.0  # nothing saturated: pen case (a)
        for x in (0.7, 1.0, 1.1, -5.2):
            _, _, record = program.run((x,), runtime=Runtime())
            tracker.add_execution(record)
        assert tracker.all_saturated()
        assert representing([0.7]) > 0.0  # everything saturated: pen case (c)

    def test_clone_shares_compiled_specializations(self):
        clear_compiled_cache()
        program = instrument(sp.nested_branches)
        program.specialize(0b1001)
        entries = compiled_cache_info()["specialized"]["entries"]
        clone = program.clone()
        clone.specialize(0b1001)
        info = compiled_cache_info()["specialized"]
        assert info["entries"] == entries  # compile shared, only re-exec'd
        assert info["hits"] >= 1
        assert clone.specialization_builds == 1  # the clone's own namespace


class TestSpecializedProgramAPI:
    def test_run_profiled_dispatches_specialized(self):
        program = instrument(sp.paper_foo)
        value, r, covered = program.run_profiled(
            [0.5], ExecutionProfile.PENALTY_SPECIALIZED, saturated_mask=0
        )
        ref_value, ref_r, ref_covered = program.run_specialized([0.5], 0)
        assert (value, r, covered) == (ref_value, ref_r, ref_covered)

    def test_run_profiled_honors_runtime_epsilon_and_mask(self):
        """A passed fast runtime configures the specialized tier (epsilon+mask)."""
        program = instrument(sp.paper_foo)
        custom = FastRuntime(program.n_conditionals, saturated_mask=0b1000, epsilon=0.5)
        for point in ([-3.0], [0.7], [1.0]):
            program.handle.install(custom)
            custom.begin()
            try:
                program.entry(*point)
            except (ArithmeticError, ValueError, OverflowError):
                pass
            _, r, _ = program.run_profiled(
                point, ExecutionProfile.PENALTY_SPECIALIZED, runtime=custom
            )
            assert _bits(r) == _bits(custom.r), point

    def test_programs_without_units_cannot_specialize(self, paper_foo_program):
        import dataclasses

        bare = dataclasses.replace(paper_foo_program, units=())
        with pytest.raises(InstrumentationError, match="cannot be specialized"):
            bare.specialize(0)

    def test_cache_info_reports_specialized_stats(self):
        clear_compiled_cache()
        info = compiled_cache_info()
        assert info["specialized"]["entries"] == 0
        assert {"hits", "misses", "evictions", "max_entries"} <= set(info["specialized"])
        program = instrument(sp.single_branch)
        program.specialize(0)
        assert compiled_cache_info()["specialized"]["entries"] == 1
        clear_compiled_cache()
        cleared = compiled_cache_info()
        assert cleared["entries"] == 0
        assert cleared["specialized"]["entries"] == 0
        assert cleared["specialized"]["misses"] == 0

    def test_variant_cache_is_bounded(self):
        from repro.instrument import program as program_module

        program = instrument(sp.three_dimensional)  # 3 conditionals: 64 masks
        limit = program_module._VARIANTS_MAX
        n_masks = 1 << (2 * program.n_conditionals)
        for mask in range(n_masks):
            program.specialize(mask)
        assert len(program._variants) <= limit
        assert program.specialization_builds == n_masks


class TestRepresentingSpecialized:
    def test_evaluate_with_coverage_is_complete(self):
        """Coverage harvest must not inherit the partial specialized bitset."""
        program = instrument(sp.nested_branches)
        outcomes = {}
        for profile in (ExecutionProfile.FULL_TRACE, ExecutionProfile.PENALTY_SPECIALIZED):
            representing = RepresentingFunction(
                program, SaturationTracker(program), profile=profile
            )
            value, coverage = representing.evaluate_with_coverage([1.0, -1.0])
            outcomes[profile] = (
                value,
                coverage.covered,
                coverage.last_conditional,
                coverage.last_outcome,
            )
        assert len(set(outcomes.values())) == 1, outcomes

    def test_evaluate_with_record_materializes_trace(self):
        program = instrument(sp.paper_foo)
        representing = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        value, record = representing.evaluate_with_record([0.5])
        assert record.path
        assert value == representing.last_value

    def test_nonfinite_r_is_clamped(self):
        """C1 (FOO_R >= 0, finite) holds under the specialized tier too."""
        program = instrument(sp.boolean_condition)
        tracker = SaturationTracker(program)
        representing = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        for x in ([float("nan"), 1.0], [float("inf"), float("inf")], [1e300, -1e300]):
            value = representing(x)
            assert 0.0 <= value <= 1.0e300

    def test_coerce_accepts_common_shapes(self):
        program = instrument(sp.paper_foo)
        representing = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_SPECIALIZED
        )
        reference = representing(np.array([0.5]))
        assert representing(0.5) == reference
        assert representing([0.5]) == reference
        assert representing((0.5,)) == reference
        assert representing(np.array(0.5)) == reference  # 0-d array
        assert representing(np.array([0.5], dtype=np.float32)) == reference
        with pytest.raises(ValueError, match="expects 1 inputs"):
            representing(np.array([1.0, 2.0]))
