"""Accuracy tests for the Fdlibm port against Python's ``math`` module.

Accuracy is not what CoverMe exercises (only the branch structure matters for
coverage), but the ports are expected to compute sensible values: these tests
pin that down for the functions whose port keeps the original's numerics.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.fdlibm import suite

REL_TOL = 1e-4


def close(a: float, b: float, rel: float = REL_TOL) -> bool:
    if math.isnan(a) or math.isnan(b):
        return math.isnan(a) and math.isnan(b)
    if math.isinf(a) or math.isinf(b):
        return a == b
    return abs(a - b) <= rel * max(abs(a), abs(b), 1.0e-12)


UNARY_CASES = [
    ("ieee754_exp", math.exp, [-700.0, -5.0, -0.1, 0.0, 0.1, 1.0, 10.0, 700.0]),
    ("ieee754_log", math.log, [1e-300, 0.1, 1.0, 2.718281828, 1e10, 1e300]),
    ("ieee754_log10", math.log10, [1e-10, 0.5, 1.0, 1000.0, 1e100]),
    ("expm1", math.expm1, [-50.0, -1.0, -1e-10, 0.0, 1e-10, 1.0, 30.0]),
    ("log1p", math.log1p, [-0.9, -1e-10, 0.0, 1e-10, 1.0, 1e15]),
    ("ieee754_sqrt", math.sqrt, [0.0, 1e-308, 0.25, 2.0, 1e10, 1e300]),
    ("cbrt", lambda v: math.copysign(abs(v) ** (1.0 / 3.0), v), [-27.0, -0.125, 0.008, 8.0, 1e30]),
    ("sin", math.sin, [-10.0, -1.0, 0.0, 0.5, 1.570796, 100.0, 1e6]),
    ("cos", math.cos, [-10.0, -1.0, 0.0, 0.5, 3.14159, 100.0]),
    ("tan", math.tan, [-1.0, 0.0, 0.5, 1.0, 10.0]),
    ("tanh", math.tanh, [-30.0, -1.0, 0.0, 1e-3, 1.0, 30.0]),
    ("ieee754_sinh", math.sinh, [-5.0, -0.25, 0.0, 0.25, 5.0, 300.0]),
    ("ieee754_cosh", math.cosh, [-5.0, -0.25, 0.0, 0.25, 5.0, 300.0]),
    ("asinh", math.asinh, [-100.0, -1.0, 0.0, 1e-3, 1.0, 1e10]),
    ("ieee754_acosh", math.acosh, [1.0, 1.5, 2.0, 100.0, 1e10]),
    ("ieee754_atanh", math.atanh, [-0.99, -0.5, 0.0, 0.5, 0.99]),
    ("atan", math.atan, [-1e10, -2.0, -0.1, 0.0, 0.1, 2.0, 1e10]),
    ("ieee754_asin", math.asin, [-1.0, -0.99, -0.3, 0.0, 0.3, 0.99, 1.0]),
    ("ieee754_acos", math.acos, [-1.0, -0.99, -0.3, 0.0, 0.3, 0.99, 1.0]),
    ("erf", math.erf, [-5.0, -1.0, -0.1, 0.0, 0.1, 0.5, 1.0, 2.0, 6.5]),
    ("erfc", math.erfc, [-6.5, -1.0, 0.0, 0.5, 1.0, 2.0, 10.0, 27.0]),
    ("floor", math.floor, [-2.5, -0.5, 0.0, 0.5, 2.5, 1e20, 123456.789]),
    ("ceil", math.ceil, [-2.5, -0.5, 0.0, 0.5, 2.5, 123456.789]),
    ("logb", lambda v: float(math.frexp(v)[1] - 1), [0.5, 1.0, 3.0, 1e100, 1e-100]),
]

BINARY_CASES = [
    ("ieee754_pow", math.pow, [(2.0, 10.0), (2.0, 0.5), (10.0, -3.0), (1.0001, 10000.0), (-2.0, 3.0), (-2.0, 4.0), (0.5, 700.0)]),
    ("ieee754_fmod", math.fmod, [(5.5, 2.0), (-5.5, 2.0), (5.5, -2.0), (1e18, 3.1415), (0.25, 10.0)]),
    ("ieee754_remainder", math.remainder, [(5.5, 2.0), (-5.5, 2.0), (13.0, 4.0), (1e10, 7.0)]),
    ("ieee754_hypot", math.hypot, [(3.0, 4.0), (-3.0, 4.0), (1e200, 1e200), (1e-200, 1e-200), (0.0, 0.0)]),
    ("ieee754_atan2", math.atan2, [(1.0, 1.0), (-1.0, 1.0), (1.0, -1.0), (-1.0, -1.0), (0.0, -2.0), (5.0, 0.0)]),
    ("ieee754_scalb", lambda x, n: math.ldexp(x, int(n)), [(1.5, 10.0), (3.0, -20.0), (-2.0, 5.0)]),
]


class TestUnaryAccuracy:
    @pytest.mark.parametrize("name,reference,points", UNARY_CASES, ids=[c[0] for c in UNARY_CASES])
    def test_matches_math_module(self, name, reference, points):
        entry = suite.get_case(name).entry
        for x in points:
            assert close(entry(x), reference(x)), f"{name}({x}): {entry(x)} vs {reference(x)}"


class TestBinaryAccuracy:
    @pytest.mark.parametrize("name,reference,points", BINARY_CASES, ids=[c[0] for c in BINARY_CASES])
    def test_matches_math_module(self, name, reference, points):
        entry = suite.get_case(name).entry
        for x, y in points:
            assert close(entry(x, y), reference(x, y)), f"{name}({x},{y})"


class TestStructuredResults:
    def test_modf_parts(self):
        frac, integral = suite.get_case("modf").entry(3.75)
        assert integral == 3.0
        assert frac == pytest.approx(0.75)
        frac, integral = suite.get_case("modf").entry(-3.75)
        assert integral == -3.0
        assert frac == pytest.approx(-0.75)

    def test_rem_pio2_reduction(self):
        n, y0, y1 = suite.get_case("ieee754_rem_pio2").entry(10.0)
        assert math.isclose(n * (math.pi / 2.0) + y0 + y1, 10.0, rel_tol=1e-9)
        assert abs(y0) <= math.pi / 4.0 + 1e-9

    def test_ilogb_matches_frexp(self):
        ilogb = suite.get_case("ilogb").entry
        for x in (0.5, 1.0, 3.0, 1e100, 1e-100, 12345.678):
            assert ilogb(x) == math.frexp(x)[1] - 1

    def test_nextafter_matches_math(self):
        nextafter = suite.get_case("nextafter").entry
        for x, y in [(1.0, 2.0), (1.0, 0.0), (-1.0, 0.0), (0.0, 1.0), (0.0, -1.0), (5.0, 5.0)]:
            assert nextafter(x, y) == math.nextafter(x, y)

    def test_kernel_cos_small_range(self):
        kernel_cos = suite.get_case("kernel_cos").entry
        for x in (-0.7, -0.2, 0.0, 0.2, 0.7):
            assert kernel_cos(x, 0.0) == pytest.approx(math.cos(x), rel=1e-9)


class TestPropertyAccuracy:
    @given(x=st.floats(min_value=-700.0, max_value=700.0, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_exp_positive_and_close(self, x):
        value = suite.get_case("ieee754_exp").entry(x)
        assert value >= 0.0
        assert close(value, math.exp(x))

    @given(x=st.floats(min_value=1e-300, max_value=1e300, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_log_exp_inverse(self, x):
        log = suite.get_case("ieee754_log").entry
        assert close(log(x), math.log(x))

    @given(x=st.floats(min_value=-1e15, max_value=1e15, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_floor_le_x_le_ceil(self, x):
        floor = suite.get_case("floor").entry(x)
        ceil = suite.get_case("ceil").entry(x)
        assert floor <= x <= ceil
        assert ceil - floor in (0.0, 1.0)

    @given(x=st.floats(min_value=-1e8, max_value=1e8, allow_nan=False))
    @settings(max_examples=100, deadline=None)
    def test_tanh_bounded(self, x):
        value = suite.get_case("tanh").entry(x)
        assert -1.0 <= value <= 1.0
