"""Tests for MCMC ingredients, basin-hopping, and the SciPy adapter."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.figure2 import FIGURE2B_MINIMA, figure2b_objective
from repro.optimize.basinhopping import basinhopping
from repro.optimize.mcmc import metropolis_accept, propose_perturbation
from repro.optimize.result import OptimizeResult, evaluate_counted
from repro.optimize.scipy_backend import scipy_basinhopping


def multimodal(x):
    return figure2b_objective(float(np.atleast_1d(x)[0]))


class TestMetropolis:
    def test_always_accepts_improvement(self, rng):
        assert metropolis_accept(rng, f_current=5.0, f_proposed=1.0)

    def test_never_accepts_nan(self, rng):
        assert not metropolis_accept(rng, 1.0, float("nan"))

    def test_acceptance_probability_matches_exponential(self, rng):
        """Worse proposals are accepted with probability exp(-gap/T) (Lem. 2.1 flavour)."""
        gap = 1.0
        trials = 4000
        accepted = sum(
            metropolis_accept(rng, 0.0, gap, temperature=1.0) for _ in range(trials)
        )
        expected = np.exp(-gap)
        assert accepted / trials == pytest.approx(expected, abs=0.05)

    def test_zero_temperature_is_greedy(self, rng):
        assert not metropolis_accept(rng, 1.0, 2.0, temperature=0.0)


class TestPerturbation:
    def test_shape_and_scale(self, rng):
        x = np.array([1.0, -1000.0])
        samples = np.array([propose_perturbation(rng, x, 0.5) for _ in range(200)])
        assert samples.shape == (200, 2)
        # The second coordinate's spread should be much wider (relative scaling).
        assert samples[:, 1].std() > 50 * samples[:, 0].std()

    def test_handles_non_finite_current_point(self, rng):
        x = np.array([float("inf")])
        proposal = propose_perturbation(rng, x, 1.0)
        assert proposal.shape == (1,)


class TestBasinhopping:
    def test_escapes_local_minimum(self, rng):
        # Start near the local (non-global) basin of the Fig. 2(b) objective.
        result = basinhopping(multimodal, np.array([6.0]), n_iter=25, step_size=2.0, rng=rng)
        assert result.fun == pytest.approx(0.0, abs=1e-6)
        assert min(abs(result.x[0] - m) for m in FIGURE2B_MINIMA) < 1e-2

    def test_callback_stops_early(self, rng):
        calls = []

        def callback(x, f, accepted):
            calls.append(f)
            return True  # stop immediately

        result = basinhopping(multimodal, np.array([6.0]), n_iter=50, rng=rng, callback=callback)
        assert result.message == "stopped by callback"
        assert len(calls) == 1
        assert result.nit == 0

    def test_zero_iterations_is_pure_local_minimization(self, rng):
        result = basinhopping(lambda x: float((x[0] - 2) ** 2), np.array([9.0]), n_iter=0, rng=rng)
        assert result.fun == pytest.approx(0.0, abs=1e-8)
        assert result.nit == 0

    def test_accepts_callable_local_minimizer(self, rng):
        from repro.optimize.local import nelder_mead

        result = basinhopping(
            multimodal, np.array([0.0]), n_iter=10, local_minimizer=nelder_mead, rng=rng
        )
        assert result.fun == pytest.approx(0.0, abs=1e-4)

    def test_deterministic_given_seed(self):
        a = basinhopping(multimodal, np.array([5.0]), n_iter=10, rng=np.random.default_rng(3))
        b = basinhopping(multimodal, np.array([5.0]), n_iter=10, rng=np.random.default_rng(3))
        assert a.fun == b.fun
        assert np.array_equal(a.x, b.x)


class TestSciPyBackend:
    def test_reaches_global_minimum(self, rng):
        result = scipy_basinhopping(multimodal, np.array([6.0]), n_iter=25, rng=rng)
        assert result.fun == pytest.approx(0.0, abs=1e-6)

    def test_callback_early_stop(self, rng):
        result = scipy_basinhopping(
            multimodal, np.array([6.0]), n_iter=50, rng=rng, callback=lambda x, f, a: True
        )
        assert result.fun is not None


class TestOptimizeResult:
    def test_normalizes_x_to_array(self):
        result = OptimizeResult(x=[1.0, 2.0], fun=3)
        assert isinstance(result.x, np.ndarray)
        assert result.fun == 3.0

    def test_better_than(self):
        assert OptimizeResult(x=[0.0], fun=1.0).better_than(OptimizeResult(x=[0.0], fun=2.0))

    def test_evaluate_counted(self):
        wrapped, counter = evaluate_counted(lambda x: x * 2)
        assert wrapped(3) == 6
        assert wrapped(4) == 8
        assert counter[0] == 2
