"""Tests of the native machine-code penalty tier (``instrument/native/``).

The contract under test is cross-tier bit-identity: for any program, any
saturation mask and any input row -- NaN, infinities, denormals, huge-int
word patterns included -- the native scalar entry point, the native batch
entry point (serial *and* threaded, ``n_threads`` in {1, 2, 4}), the scalar
``PENALTY_SPECIALIZED`` variant and the generic
:class:`~repro.instrument.runtime.FastRuntime` must compute the same ``r``
bit-for-bit and the same covered-branch sets.  On top of that sit the
caller-held covered-bit accumulator (incremental reduction), the
kernel/digest caches (including the ``-O3`` flag tier), the background
compiler (kernel absent: the specialized tier serves, no warning, and the
kernel swaps in once ``cc`` lands), the ``NativeUnavailable`` degradation
(no compiler: one per-instance warning, identical results through the
specialized tier), the ``repro native-cache`` CLI and the engine-level
identity of ``penalty-native`` vs ``penalty-specialized`` runs across
worker pools.

Every test that needs a C compiler self-skips when none is present, so the
suite passes on compiler-less machines with the degradation tests carrying
the load there.
"""

from __future__ import annotations

import dataclasses
import math
import os
import struct
import warnings

import numpy as np
import pytest

from repro.cli import main as cli_main
from repro.core.config import CoverMeConfig
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.engine.core import SearchEngine
from repro.experiments.pipeline import _TOOL_FP_EXCLUDE, tool_fingerprint
from repro.experiments.runner import instrument_case
from repro.fdlibm.suite import BENCHMARKS
from repro.instrument.native.cache import (
    NativeUnavailable,
    _reset_background_for_tests,
    _reset_cc_probe_for_tests,
    background_compile_stats,
    cc_available,
    compile_kernel,
    disk_cache_max,
    find_cc,
    native_cache_entries,
    opt_tier,
    wait_for_background,
)
from repro.instrument.native.kernel import (
    build_native_kernel,
    clear_native_cache,
    kernel_digest,
    native_cache_info,
)
from repro.instrument.program import (
    clear_compiled_cache,
    compiled_cache_info,
    instrument,
)
from repro.instrument.runtime import ExecutionProfile
from tests import sample_programs as sp
from tests.test_specialize import PARITY_TARGETS, _run_fast, _unsaturated_bits

requires_cc = pytest.mark.skipif(
    not cc_available(), reason="no C compiler (cc/gcc/clang) on PATH"
)


def _bits(value: float) -> bytes:
    return struct.pack("=d", value)


def _from_word(bits: int) -> float:
    return struct.unpack("=d", struct.pack("=Q", bits))[0]


#: Adversarial scalar inputs: signed zeros, NaN (quiet and the signaling
#: 0x7ff0000000000001 word pattern), infinities, near-overflow magnitudes,
#: denormals down to the smallest, and doubles beyond int64 (``int(x)``
#: cannot be replicated in an int64 lane -- the native code must bail).
_ADVERSARIAL = (
    0.0,
    -0.0,
    2.0,
    -7.5,
    float("nan"),
    float("inf"),
    -float("inf"),
    1e308,
    -1e308,
    5e-324,
    -5e-324,
    1e-320,
    1e19,
    -1e19,
    _from_word(0x7FF0000000000001),  # signaling-NaN word pattern
    _from_word(0x000FFFFFFFFFFFFF),  # largest denormal
    _from_word(0x7FEFFFFFFFFFFFFF),  # DBL_MAX
)

#: Programs whose loops never terminate on +inf input (in every tier alike).
_NO_INF = (sp.loop_program, sp.while_else_loop)


def _adversarial_rows(rng, target, arity: int, n_random: int) -> np.ndarray:
    specials = [
        s
        for s in _ADVERSARIAL
        if not (target in _NO_INF and s == float("inf"))
    ]
    rows = [rng.normal(scale=5.0, size=arity) for _ in range(n_random)]
    rows += [[s] * arity for s in specials]
    return np.ascontiguousarray(rows, dtype=np.float64)


def _assert_native_parity(program, mask: int, X: np.ndarray) -> None:
    """Native scalar == native batch == specialized == FastRuntime, row for row.

    The batch check runs the threaded entry at ``n_threads`` in {1, 2, 4}
    and the caller-held accumulator on top of the serial loop: every
    combination must produce bit-identical ``r`` rows and the same covered
    set (the accumulator reporting the full union on first use and the
    empty delta on repetition)."""
    kernel = program.native_kernel(mask)
    r_batch, cov_batch = kernel(X)
    r_bits = r_batch.view(np.uint64)
    for n_threads in (2, 4):
        r_mt, cov_mt = kernel(X, n_threads=n_threads)
        context = (program.name, hex(mask), n_threads)
        assert np.array_equal(r_bits, r_mt.view(np.uint64)), context
        assert cov_mt == cov_batch, context
    acc = kernel.new_accumulator()
    r_acc, new_mask = kernel(X, n_threads=2, accumulator=acc)
    assert np.array_equal(r_bits, r_acc.view(np.uint64))
    assert new_mask == cov_batch and acc.covered == cov_batch
    _r_again, again = kernel(X, n_threads=4, accumulator=acc)
    assert again == 0  # incremental: nothing newly set on a repeat batch
    cov_union = 0
    for i, row in enumerate(X):
        args = row.tolist()
        _, r_sp, cov_sp = program.run_specialized(args, mask)
        r_native, cov_native = kernel.scalar(args)
        _, r_fast, cov_fast = _run_fast(program, mask, args)
        context = (program.name, hex(mask), args)
        assert _bits(r_native) == _bits(r_sp) == _bits(r_fast), context
        assert _bits(float(r_batch[i])) == _bits(r_sp), context
        assert cov_native == cov_sp, context
        assert cov_sp == _unsaturated_bits(mask, cov_fast, program.n_conditionals), context
        cov_union |= cov_sp
    assert cov_batch == cov_union, (program.name, hex(mask))


@requires_cc
class TestSampleFormParity:
    @pytest.mark.parametrize("target", PARITY_TARGETS, ids=lambda f: f.__name__)
    def test_bit_identical_over_random_masks(self, target):
        program = instrument(target)
        rng = np.random.default_rng(41)
        n_bits = 2 * program.n_conditionals
        for trial in range(3):
            mask = int(rng.integers(0, 1 << n_bits)) if trial else 0
            X = _adversarial_rows(rng, target, program.arity, n_random=4)
            _assert_native_parity(program, mask, X)

    def test_all_saturated_mask(self):
        for target in (sp.paper_foo, sp.nested_boolean, sp.chained_comparison):
            program = instrument(target)
            rng = np.random.default_rng(43)
            X = _adversarial_rows(rng, target, program.arity, n_random=2)
            _assert_native_parity(program, (1 << (2 * program.n_conditionals)) - 1, X)

    def test_multi_unit_program_with_instrumented_helper(self):
        program = instrument(sp.calls_helper, extra_functions=[sp.helper_goo])
        rng = np.random.default_rng(47)
        X = _adversarial_rows(rng, sp.calls_helper, program.arity, n_random=4)
        for mask in (0, 1, 5):
            _assert_native_parity(program, mask, X)


@requires_cc
class TestFdlibmSuiteParity:
    @pytest.mark.parametrize("case", BENCHMARKS, ids=lambda c: c.function.split("(")[0])
    def test_bit_identical_row_for_row(self, case):
        program = instrument_case(case)
        rng = np.random.default_rng(53)
        n_bits = 2 * program.n_conditionals
        rows = [rng.uniform(-50, 50, size=program.arity) for _ in range(6)]
        rows += [[s] * program.arity for s in _ADVERSARIAL]
        X = np.ascontiguousarray(rows, dtype=np.float64)
        for trial in range(2):
            mask = int(rng.integers(0, 1 << min(n_bits, 62))) if trial else 0
            _assert_native_parity(program, mask, X)


def trunc_overflows(x):
    k = int(x)
    if k > 10:
        return 1.0
    return 0.0


@requires_cc
class TestRuntimeBail:
    def test_int64_overflow_rows_fall_back_per_row(self):
        """``int()`` of a double >= 2**63 hits a native bail site: those rows
        are transparently redone on the scalar specialized variant while the
        rest of the batch stays native, values and coverage identical."""
        program = instrument(trunc_overflows)
        X = np.ascontiguousarray([[2.5], [1e19], [-3.0], [-1e19]], dtype=np.float64)
        _assert_native_parity(program, 0, X)
        kernel = program.native_kernel(0)
        assert kernel.loaded.bail_sites >= 1

    def test_swallowed_exceptions_freeze_like_the_scalar_tier(self):
        # raises_for_small raises for |x| < 1: the native code must freeze
        # (keep r and coverage, stop executing) exactly where the scalar
        # tier swallows the exception.
        program = instrument(sp.raises_for_small)
        X = np.ascontiguousarray(
            [[0.5], [-0.25], [2.0], [float("nan")]], dtype=np.float64
        )
        _assert_native_parity(program, 0, X)


@requires_cc
class TestRepresentingFunctionNative:
    def _pair(self, target):
        program = instrument(target)
        # Pre-warm the mask-0 kernel (blocking build): these tests assert
        # exact respecialization counters, which the non-blocking default
        # would smear across the background-compile window.
        program.native_kernel(0)
        native = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_NATIVE
        )
        specialized = RepresentingFunction(
            program,
            SaturationTracker(program),
            profile=ExecutionProfile.PENALTY_SPECIALIZED,
        )
        return program, native, specialized

    def test_scalar_calls_match_specialized_including_clamp(self):
        _, native, specialized = self._pair(sp.paper_foo)
        for value in _ADVERSARIAL:
            assert _bits(native([value])) == _bits(specialized([value])), value
        assert native.native_respecializations == 1
        assert native.evaluations == len(_ADVERSARIAL)

    def test_evaluate_batch_uses_native_kernel(self):
        _, native, specialized = self._pair(sp.paper_foo)
        X = np.ascontiguousarray([[v] for v in _ADVERSARIAL], dtype=np.float64)
        values = native.evaluate_batch(X)
        assert native.batched_calls == 1
        assert native.batch_respecializations == 0  # served natively
        assert native.native_respecializations == 1
        for i in range(X.shape[0]):
            assert _bits(float(values[i])) == _bits(specialized(X[i]))

    def test_native_threads_change_nothing_but_the_thread_count(self):
        program = instrument(sp.paper_foo)
        program.native_kernel(0)
        X = np.ascontiguousarray([[v] for v in _ADVERSARIAL], dtype=np.float64)
        outputs = []
        for n_threads in (1, 2, 4):
            native = RepresentingFunction(
                program,
                SaturationTracker(program),
                profile=ExecutionProfile.PENALTY_NATIVE,
                native_threads=n_threads,
            )
            assert native.native_threads == n_threads
            outputs.append(native.evaluate_batch(X).view(np.uint64).tolist())
        assert outputs[0] == outputs[1] == outputs[2]

    def test_config_validates_native_threads(self):
        with pytest.raises(ValueError, match="native_threads"):
            CoverMeConfig(native_threads=0)
        assert CoverMeConfig(native_threads=4).native_threads == 4

    def test_epoch_protocol_respecializes_only_on_mask_flip(self):
        program, native, _ = self._pair(sp.paper_foo)
        tracker = native.tracker
        native([4.0])
        native([4.0])
        assert native.native_respecializations == 1
        _, coverage = native.evaluate_with_coverage([4.0])
        tracker.add_covered(set(coverage.covered))
        if tracker.saturated_mask != 0:
            # Pre-warm the flipped mask too (see _pair).
            program.native_kernel(tracker.saturated_mask)
            native([4.0])
            assert native.native_respecializations == 2
            assert native._native_kernel.saturated_mask == tracker.saturated_mask

    def test_coverage_harvest_identical_across_profiles(self):
        _, native, specialized = self._pair(sp.nested_branches)
        for args in ([4.0, 1.0], [0.0, -2.0], [float("nan"), 3.0]):
            value_n, cov_n = native.evaluate_with_coverage(args)
            value_s, cov_s = specialized.evaluate_with_coverage(args)
            assert _bits(value_n) == _bits(value_s)
            assert cov_n.covered == cov_s.covered
            assert cov_n.last_conditional == cov_s.last_conditional


@requires_cc
class TestCachesAndDigest:
    _UNIT = ("def f(x):\n    return x\n", "f", "L0")

    def test_digest_sensitive_to_source_mask_and_epsilon(self):
        base = kernel_digest((self._UNIT,), 0, 1e-6)
        assert kernel_digest((self._UNIT,), 0, 1e-6) == base
        other_source = (("def f(x):\n    return x + 1.0\n", "f", "L0"),)
        assert kernel_digest(other_source, 0, 1e-6) != base
        assert kernel_digest((self._UNIT,), 3, 1e-6) != base
        assert kernel_digest((self._UNIT,), 0, 1e-7) != base

    def test_o3_flag_tier_folds_into_the_digest(self, monkeypatch):
        monkeypatch.delenv("REPRO_NATIVE_O3", raising=False)
        assert opt_tier() == "O2"
        base = kernel_digest((self._UNIT,), 0, 1e-6)
        monkeypatch.setenv("REPRO_NATIVE_O3", "1")
        assert opt_tier() == "O3"
        assert kernel_digest((self._UNIT,), 0, 1e-6) != base
        monkeypatch.setenv("REPRO_NATIVE_O3", "0")  # falsy spellings stay O2
        assert opt_tier() == "O2"
        assert kernel_digest((self._UNIT,), 0, 1e-6) == base

    def test_o3_tier_compiles_and_stays_bit_identical(self, monkeypatch):
        X = np.ascontiguousarray([[v] for v in _ADVERSARIAL], dtype=np.float64)
        monkeypatch.delenv("REPRO_NATIVE_O3", raising=False)
        base_kernel = instrument(sp.paper_foo).native_kernel(0)
        r_base, cov_base = base_kernel(X)
        monkeypatch.setenv("REPRO_NATIVE_O3", "1")
        o3_kernel = instrument(sp.paper_foo).native_kernel(0)
        assert o3_kernel.digest != base_kernel.digest  # separate cache entry
        r_o3, cov_o3 = o3_kernel(X)
        assert np.array_equal(r_base.view(np.uint64), r_o3.view(np.uint64))
        assert cov_o3 == cov_base

    def test_program_kernel_cache_and_build_counter(self):
        program = instrument(sp.paper_foo)
        first = program.native_kernel(0)
        assert program.native_kernel(0) is first
        assert program.native_kernel_builds == 1
        program.native_kernel(3)
        assert program.native_kernel_builds == 2

    def test_module_cache_hits_across_program_instances(self):
        clear_native_cache()
        instrument(sp.paper_foo).native_kernel(0)
        misses_before = native_cache_info()["misses"]
        instrument(sp.paper_foo).native_kernel(0)
        info = native_cache_info()
        assert info["misses"] == misses_before
        assert info["hits"] >= 1

    def test_compiled_cache_info_reports_native_and_clear_clears_it(self):
        clear_compiled_cache()
        info = compiled_cache_info()
        assert "native" in info
        assert {"entries", "hits", "misses", "evictions", "disk_entries", "cc"} <= set(
            info["native"]
        )
        instrument(sp.paper_foo).native_kernel(0)
        assert compiled_cache_info()["native"]["entries"] >= 1
        clear_compiled_cache()
        after = compiled_cache_info()["native"]
        assert after["entries"] == 0
        assert after["hits"] == 0 and after["misses"] == 0

    def test_unavailable_programs_are_negatively_cached(self):
        def calls_gamma(x: float) -> float:
            return math.gamma(x) + 0.0

        program = instrument(calls_gamma)
        clear_native_cache()
        with pytest.raises(NativeUnavailable):
            build_native_kernel(program, 0)
        misses = native_cache_info()["misses"]
        with pytest.raises(NativeUnavailable):
            build_native_kernel(program, 0)
        info = native_cache_info()
        assert info["misses"] == misses  # second failure served from cache
        assert info["hits"] >= 1

    def test_run_profiled_dispatches_to_native(self):
        program = instrument(sp.paper_foo)
        value, r, covered = program.run_profiled(
            [4.0], ExecutionProfile.PENALTY_NATIVE, saturated_mask=0
        )
        _, r_sp, cov_sp = program.run_specialized([4.0], 0)
        assert value is None  # the native kernel computes only r and coverage
        assert _bits(r) == _bits(r_sp)
        assert covered == cov_sp


@requires_cc
class TestBackgroundCompile:
    def test_absent_kernel_serves_specialized_then_swaps_in(
        self, tmp_path, monkeypatch
    ):
        """Kernel absent -> the first native-tier calls run on the
        specialized tier (transient state: no warning) while ``cc`` runs in
        the background; once the build lands the kernel swaps in at the
        next call boundary and the counters account for both phases."""
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))  # cold disk
        clear_native_cache()
        _reset_background_for_tests()
        program = instrument(sp.paper_foo)
        native = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_NATIVE
        )
        specialized = RepresentingFunction(
            program,
            SaturationTracker(program),
            profile=ExecutionProfile.PENALTY_SPECIALIZED,
        )
        stats_before = background_compile_stats()
        with warnings.catch_warnings():
            # The compiling state is transient and must not trip the
            # degradation warning machinery.
            warnings.simplefilter("error", RuntimeWarning)
            first = native([4.0])
        assert native.native_respecializations == 0  # no kernel yet
        assert native.native_pending_calls >= 1
        assert native._native_ok  # not latched: this is not a degradation
        assert _bits(first) == _bits(specialized([4.0]))
        pending = native._native_pending
        assert pending is not None
        wait_for_background(pending)
        stats = background_compile_stats()
        assert stats["submitted"] == stats_before["submitted"] + 1
        assert stats["compiled"] == stats_before["compiled"] + 1
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            second = native([4.0])
        assert native.native_respecializations == 1  # swapped in
        assert native._native_pending is None
        assert _bits(second) == _bits(first)
        # The batch path serves from the swapped-in kernel too.
        X = np.ascontiguousarray([[v] for v in _ADVERSARIAL], dtype=np.float64)
        values = native.evaluate_batch(X)
        assert native.batch_respecializations == 0
        for i in range(X.shape[0]):
            assert _bits(float(values[i])) == _bits(specialized(X[i]))
        clear_native_cache()

    def test_background_jobs_deduplicate_by_digest(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        clear_native_cache()
        _reset_background_for_tests()
        program = instrument(sp.nested_boolean)
        submitted_before = background_compile_stats()["submitted"]
        instances = [
            RepresentingFunction(
                program,
                SaturationTracker(program),
                profile=ExecutionProfile.PENALTY_NATIVE,
            )
            for _ in range(3)
        ]
        args = [1.0] * program.arity
        pendings = set()
        for representing in instances:
            representing(args)
            pendings.add(representing._native_pending)
        pendings.discard(None)  # a fast build may land mid-loop
        assert len(pendings) <= 1  # all instances share one digest
        stats = background_compile_stats()
        assert stats["submitted"] <= submitted_before + 1  # de-duplicated
        for pending in pendings:
            wait_for_background(pending)
        clear_native_cache()

    def test_pruned_done_outcome_is_rebuilt_not_served_stale(
        self, tmp_path, monkeypatch
    ):
        """A recorded "done" outcome whose .so was FIFO-pruned from disk
        must be forgotten and rebuilt, never handed back as a dead path."""
        from repro.instrument.native.cache import (
            NativeCompiling,
            compile_kernel_background,
        )

        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        _reset_background_for_tests()
        digest = "ab" * 32
        source = "int sp_dummy_prune(void) { return 7; }\n"
        with pytest.raises(NativeCompiling):
            compile_kernel_background(source, digest)
        wait_for_background(digest)
        so_path = tmp_path / f"{digest}.so"
        assert so_path.exists()
        # Simulate the FIFO prune deleting the entry while the "done"
        # outcome is still recorded in the job table.
        so_path.unlink()
        so_path.with_suffix(".c").unlink()
        with pytest.raises(NativeCompiling):
            compile_kernel_background(source, digest)  # resubmit, not stale
        wait_for_background(digest)
        assert compile_kernel_background(source, digest) == so_path
        assert so_path.exists()
        _reset_background_for_tests()


class TestCcProbeCache:
    def test_failed_probe_is_cached_per_process(self, tmp_path, monkeypatch):
        """A compiler-less host walks $REPRO_CC/cc/gcc/clang exactly once;
        every later availability check and digest request answers from the
        cached failure without touching the filesystem."""
        import shutil as shutil_module

        calls: list[str] = []

        def fake_which(name, *args, **kwargs):
            calls.append(name)
            return None

        monkeypatch.setattr(shutil_module, "which", fake_which)
        monkeypatch.delenv("REPRO_CC", raising=False)
        _reset_cc_probe_for_tests()
        try:
            assert not cc_available()
            probe_calls = len(calls)
            assert probe_calls >= 3  # cc, gcc, clang at least
            for _ in range(3):
                assert not cc_available()
                with pytest.raises(NativeUnavailable, match="no C compiler"):
                    find_cc()
                with pytest.raises(NativeUnavailable):
                    kernel_digest((("def f(x):\n    return x\n", "f", "L0"),), 0, 1e-6)
            assert len(calls) == probe_calls  # no re-probe after the first
        finally:
            _reset_cc_probe_for_tests()


class TestDegradation:
    @pytest.fixture
    def no_cc(self, tmp_path):
        """Hide every C compiler (empty PATH, no REPRO_CC) and re-probe."""
        old_path = os.environ.get("PATH", "")
        old_cc = os.environ.pop("REPRO_CC", None)
        os.environ["PATH"] = str(tmp_path)
        _reset_cc_probe_for_tests()
        clear_native_cache()
        try:
            yield
        finally:
            os.environ["PATH"] = old_path
            if old_cc is not None:
                os.environ["REPRO_CC"] = old_cc
            _reset_cc_probe_for_tests()
            clear_native_cache()

    def test_degrades_to_specialized_with_single_warning(self, no_cc):
        assert not cc_available()
        assert native_cache_info()["cc"] is None
        program = instrument(sp.paper_foo)
        native = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_NATIVE
        )
        specialized = RepresentingFunction(
            program,
            SaturationTracker(program),
            profile=ExecutionProfile.PENALTY_SPECIALIZED,
        )
        with pytest.warns(RuntimeWarning, match="native tier permanently unavailable"):
            first = native([4.0])
        assert _bits(first) == _bits(specialized([4.0]))
        # Further calls (scalar and batched) stay silent and identical.
        X = np.ascontiguousarray([[0.5], [-2.0], [float("nan")]], dtype=np.float64)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            values = native.evaluate_batch(X)
            assert _bits(native([9.0])) == _bits(specialized([9.0]))
        for i in range(X.shape[0]):
            assert _bits(float(values[i])) == _bits(specialized(X[i]))

    def test_warning_is_per_instance(self, no_cc):
        program = instrument(sp.paper_foo)
        for _ in range(2):  # each fresh instance warns once, again
            representing = RepresentingFunction(
                program,
                SaturationTracker(program),
                profile=ExecutionProfile.PENALTY_NATIVE,
            )
            with pytest.warns(RuntimeWarning, match="native tier permanently unavailable"):
                representing([4.0])
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                representing([4.0])

    def test_build_native_kernel_raises_without_compiler(self, no_cc):
        program = instrument(sp.paper_foo)
        with pytest.raises(NativeUnavailable, match="no C compiler"):
            build_native_kernel(program, 0)

    def test_engine_run_completes_and_matches_specialized(self, no_cc):
        outcomes = []
        for profile in ("penalty-native", "penalty-specialized"):
            program = instrument(sp.paper_foo)
            config = CoverMeConfig(
                n_start=8, n_iter=2, seed=7, eval_profile=profile, worker_mode="serial"
            )
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                result = SearchEngine(program, config).run()
            outcomes.append(
                (tuple(result.inputs), result.covered, result.evaluations)
            )
        assert outcomes[0] == outcomes[1]


@requires_cc
class TestEngineIdentity:
    def _run(self, program_factory, *, profile, n_workers, mode):
        program = program_factory()
        config = CoverMeConfig(
            n_start=16,
            n_iter=3,
            seed=42,
            eval_profile=profile,
            n_workers=n_workers,
            worker_mode=mode,
        )
        result = SearchEngine(program, config).run()
        return (
            tuple(result.inputs),
            result.covered,
            result.saturated,
            frozenset(result.infeasible),
            result.evaluations,
            result.n_starts_used,
            tuple(
                (t.start, t.minimum_point, t.minimum_value, t.accepted, t.evaluations)
                for t in result.traces
            ),
        )

    @pytest.mark.parametrize("n_workers,mode", [(1, "serial"), (3, "thread"), (2, "process")])
    def test_run_sets_identical_native_vs_specialized(self, n_workers, mode):
        factory = lambda: instrument(sp.paper_foo)  # noqa: E731
        native = self._run(factory, profile="penalty-native", n_workers=n_workers, mode=mode)
        specialized = self._run(
            factory, profile="penalty-specialized", n_workers=n_workers, mode=mode
        )
        assert native == specialized, mode

    def test_rows_mode_suite_entry_identical_across_pools(self):
        by_name = {c.function.split("(")[0]: c for c in BENCHMARKS}
        factory = lambda: instrument_case(by_name["tanh"])  # noqa: E731
        with warnings.catch_warnings():
            # Prove no degradation fired anywhere in the run.
            warnings.simplefilter("error", RuntimeWarning)
            serial = self._run(
                factory, profile="penalty-native", n_workers=1, mode="serial"
            )
            threaded = self._run(
                factory, profile="penalty-native", n_workers=2, mode="thread"
            )
        specialized = self._run(
            factory, profile="penalty-specialized", n_workers=1, mode="serial"
        )
        assert serial == threaded == specialized


@requires_cc
class TestNativeCacheCLI:
    def test_ls_and_clean_roundtrip(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        digest = "deadbeef" * 8
        so_path = compile_kernel("int sp_dummy(void) { return 0; }\n", digest)
        assert so_path.exists()
        assert cli_main(["native-cache", "ls"]) == 0
        out = capsys.readouterr().out
        assert "1 kernels" in out and digest[:16] in out
        # The summary line reports total on-disk size and the FIFO bound.
        assert f"{so_path.stat().st_size} bytes total" in out
        assert f"(bound {disk_cache_max()})" in out
        assert cli_main(["native-cache", "clean"]) == 0
        assert "removed 1" in capsys.readouterr().out
        assert native_cache_entries() == []
        assert cli_main(["native-cache", "ls"]) == 0
        assert "empty" in capsys.readouterr().out

    def test_cache_max_override_bounds_the_fifo(self, tmp_path, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_NATIVE_CACHE", str(tmp_path))
        monkeypatch.setenv("REPRO_NATIVE_CACHE_MAX", "2")
        assert disk_cache_max() == 2
        for index in range(4):
            digest = f"{index:02d}" * 32
            path = compile_kernel(
                f"int sp_dummy{index}(void) {{ return {index}; }}\n", digest
            )
            # Deterministic FIFO order regardless of filesystem timestamp
            # granularity.
            os.utime(path, (index, index))
            os.utime(path.with_suffix(".c"), (index, index))
        survivors = {entry["digest"] for entry in native_cache_entries()}
        assert len(survivors) == 2
        assert "00" * 32 not in survivors  # oldest evicted first
        assert cli_main(["native-cache", "ls"]) == 0
        assert "(bound 2)" in capsys.readouterr().out
        monkeypatch.setenv("REPRO_NATIVE_CACHE_MAX", "not-a-number")
        assert disk_cache_max() == 256  # malformed override falls back


class TestFingerprintNeutrality:
    def test_eval_profile_excluded_from_tool_fingerprints(self):
        assert "eval_profile" in _TOOL_FP_EXCLUDE

        @dataclasses.dataclass
        class FakeTool:
            eval_profile: str
            depth: int = 3

        assert tool_fingerprint(FakeTool("penalty-native")) == tool_fingerprint(
            FakeTool("penalty-specialized")
        )

    def test_native_threads_excluded_from_tool_fingerprints(self):
        assert "native_threads" in _TOOL_FP_EXCLUDE

        @dataclasses.dataclass
        class FakeTool:
            native_threads: int
            depth: int = 3

        assert tool_fingerprint(FakeTool(1)) == tool_fingerprint(FakeTool(4))
