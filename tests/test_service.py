"""Tests for the coverage service layer: admission, dedup, shards, workers.

The acceptance-critical properties live here:

* duplicate-job coalescing -- N concurrent identical submissions cost one
  execution, produce N identical results, and write the store once;
* warm-path dedup -- a second identical submission executes nothing
  (counter-asserted on the tool itself, not just the service counters);
* bit-identity across entry points -- the same seeded plan run via the
  CLI, ``execute_plan`` and the HTTP daemon produces identical
  ``runs.jsonl`` records (modulo the one wall-clock field), property-
  tested across shard counts {1, 2, 4};
* the native-tier degradation warning surfaces in job outcomes/events.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.baselines.harness import Budget
from repro.cli import main
from repro.experiments.pipeline import execute_plan, get_spec, plan_jobs
from repro.experiments.runner import PROFILES, Profile
from repro.fdlibm.suite import BENCHMARKS
from repro.service import (
    AdmissionQueue,
    CoverageService,
    JobRequest,
    QueueFull,
    ServiceClosed,
    ShardRouter,
)
from repro.store import RunStore, canonical_json

#: Deterministic profile (no wall-clock budgets): every stored field except
#: ``wall_time`` is a pure function of the seed.
DET = Profile(
    name="det-svc",
    n_start=6,
    n_iter=2,
    max_cases=2,
    coverme_time_budget=None,
    baseline_execution_factor=1,
    baseline_min_executions=200,
    seed=0,
)

CASE = BENCHMARKS[0]


def _normalized_records(runs_path) -> list[str]:
    """Canonical record lines with ``wall_time`` zeroed, sorted by content.

    ``wall_time`` is the single stored field that depends on the clock;
    append order depends on scheduling.  Everything else must be identical
    across entry points, worker modes and shard counts.
    """
    lines = []
    for line in runs_path.read_text().splitlines():
        record = json.loads(line)
        record["payload"]["summary"]["wall_time"] = 0.0
        lines.append(canonical_json(record))
    return sorted(lines)


# ---------------------------------------------------------------------------
# Test tools
# ---------------------------------------------------------------------------


class CountingTool:
    """Deterministic tool that counts its executions in a shared dict.

    Deliberately *not* a dataclass: the fingerprint comes from ``__repr__``
    (configuration only), so the mutable counter cannot leak into the job
    key and change the fingerprint between submissions.
    """

    name = "Counting"

    def __init__(self, counter: dict, seed: int = 0):
        self.counter = counter
        self.seed = seed
        self.last_evaluations = 0

    def __repr__(self) -> str:
        return f"CountingTool(seed={self.seed})"

    def generate(self, program, budget):
        self.counter["executions"] += 1
        self.last_evaluations = 1
        low, high = program.signature.low, program.signature.high
        return [tuple((lo + hi) / 2 for lo, hi in zip(low, high))]


class GateTool:
    """Blocks inside ``generate`` until released (coalescing tests)."""

    name = "Gate"

    def __init__(self, gate: "Gate", seed: int = 0):
        self.gate = gate
        self.seed = seed
        self.last_evaluations = 0

    def __repr__(self) -> str:
        return f"GateTool(seed={self.seed})"

    def generate(self, program, budget):
        self.gate.started.set()
        assert self.gate.release.wait(timeout=30), "gate never released"
        with self.gate.lock:
            self.gate.executions += 1
        low, high = program.signature.low, program.signature.high
        return [tuple((lo + hi) / 2 for lo, hi in zip(low, high))]


class Gate:
    def __init__(self):
        self.started = threading.Event()
        self.release = threading.Event()
        self.lock = threading.Lock()
        self.executions = 0


# ---------------------------------------------------------------------------
# Shards and queue
# ---------------------------------------------------------------------------


class TestShardRouter:
    def test_routing_is_deterministic_and_in_range(self):
        router = ShardRouter(4)
        fp = "deadbeefcafebabe" + "0" * 48
        assert router.shard_of(fp) == router.shard_of(fp)
        assert 0 <= router.shard_of(fp) < 4
        # The documented rule: first 16 hex digits mod shard count.
        assert router.shard_of(fp) == int(fp[:16], 16) % 4

    def test_single_shard_routes_everything_to_zero(self):
        router = ShardRouter(1)
        assert router.shard_of("f" * 64) == 0

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardRouter(0)


class TestAdmissionQueue:
    def test_fifo_within_a_shard(self):
        queue = AdmissionQueue(n_shards=2, limit=10)
        queue.put("a", 0)
        queue.put("b", 0)
        queue.put("c", 1)
        assert queue.take([0]) == "a"
        assert queue.take([0, 1]) == "b"
        assert queue.take([1]) == "c"

    def test_nonblocking_put_raises_queue_full(self):
        queue = AdmissionQueue(n_shards=1, limit=1)
        queue.put("a", 0)
        with pytest.raises(QueueFull):
            queue.put("b", 0, block=False)
        assert queue.pending == 1

    def test_blocking_put_times_out(self):
        queue = AdmissionQueue(n_shards=1, limit=1)
        queue.put("a", 0)
        with pytest.raises(QueueFull):
            queue.put("b", 0, block=True, timeout=0.05)

    def test_close_drains_backlog_and_wakes_takers(self):
        queue = AdmissionQueue(n_shards=2, limit=10)
        queue.put("a", 0)
        queue.put("b", 1)
        taken = []
        thread = threading.Thread(target=lambda: taken.append(queue.take([0, 1])))
        drained = queue.close()
        thread.start()
        thread.join(5)
        # close() drained both pending jobs; the late taker saw the
        # closed-queue shutdown signal.
        assert sorted(drained) == ["a", "b"]
        assert taken == [None]


# ---------------------------------------------------------------------------
# CoverageService
# ---------------------------------------------------------------------------


class TestResultCache:
    def test_second_identical_submission_executes_nothing(self, tmp_path):
        """The warm-path dedup guarantee, counter-asserted on the tool: the
        second submission never instantiates or runs the tool at all."""
        counter = {"executions": 0}
        request = JobRequest(
            case=CASE, tool="Counting", profile=DET,
            factory=lambda p: CountingTool(counter=counter),
        )
        with CoverageService(store=tmp_path / "store", worker_mode="inline") as service:
            first = service.run(request, budget=Budget(max_executions=50))
            assert counter["executions"] == 1 and not first.cached
            second = service.run(request, budget=Budget(max_executions=50))
            assert counter["executions"] == 1  # zero executions on the repeat
            assert second.cached
            assert second.payload == first.payload
            counters = service.stats()["counters"]
            assert counters["executed"] == 1 and counters["cache_hits"] == 1

    def test_cache_spans_processes_via_the_store(self, tmp_path):
        counter = {"executions": 0}
        request = JobRequest(
            case=CASE, tool="Counting", profile=DET,
            factory=lambda p: CountingTool(counter=counter),
        )
        with CoverageService(store=tmp_path / "store", worker_mode="inline") as service:
            service.run(request, budget=Budget(max_executions=50))
        # A fresh service over the same store directory (a restarted daemon,
        # another CLI invocation) serves the record without executing.
        with CoverageService(store=tmp_path / "store", worker_mode="inline") as service:
            outcome = service.run(request, budget=Budget(max_executions=50))
        assert outcome.cached and counter["executions"] == 1

    def test_resume_false_re_executes(self, tmp_path):
        counter = {"executions": 0}
        request = JobRequest(
            case=CASE, tool="Counting", profile=DET,
            factory=lambda p: CountingTool(counter=counter),
        )
        with CoverageService(store=tmp_path / "store", worker_mode="inline") as service:
            service.run(request, budget=Budget(max_executions=50))
            service.run(request, budget=Budget(max_executions=50), resume=False)
        assert counter["executions"] == 2


class TestCoalescing:
    def test_concurrent_identical_submissions_coalesce(self, tmp_path):
        """N concurrent identical submissions: one execution, N identical
        results, the store written exactly once."""
        gate = Gate()
        request = JobRequest(
            case=CASE, tool="Gate", profile=DET, factory=lambda p: GateTool(gate=gate)
        )
        budget = Budget(max_executions=50)
        store = RunStore(tmp_path / "store")
        service = CoverageService(store=store, worker_mode="thread", n_workers=2, n_shards=4)
        try:
            first = service.submit(request, budget=budget)
            assert gate.started.wait(timeout=30)  # the one execution is in flight
            with ThreadPoolExecutor(max_workers=8) as pool:
                duplicates = list(pool.map(
                    lambda _: service.submit(request, budget=budget), range(8)
                ))
            # Every duplicate coalesced onto the same in-flight job.
            assert all(job is first for job in duplicates)
            gate.release.set()
            outcomes = [service.wait(job, timeout=30) for job in [first, *duplicates]]
            assert gate.executions == 1
            assert all(o.payload == outcomes[0].payload for o in outcomes)
            assert not any(o.cached for o in outcomes)
            counters = service.stats()["counters"]
            assert counters["executed"] == 1
            assert counters["coalesced"] == 8
        finally:
            service.close(close_store=False)
        assert len(store) == 1
        assert len((tmp_path / "store" / "runs.jsonl").read_text().splitlines()) == 1
        store.close()

    def test_coalesced_events_record_the_attach(self, tmp_path):
        gate = Gate()
        request = JobRequest(
            case=CASE, tool="Gate", profile=DET, factory=lambda p: GateTool(gate=gate)
        )
        service = CoverageService(store=tmp_path / "store", worker_mode="thread", n_workers=1)
        try:
            job = service.submit(request, budget=Budget(max_executions=50))
            assert gate.started.wait(timeout=30)
            assert service.submit(request, budget=Budget(max_executions=50)) is job
            gate.release.set()
            outcome = service.wait(job, timeout=30)
        finally:
            service.close()
        assert "coalesced" in [event["event"] for event in outcome.events]


class TestBackpressure:
    def test_full_queue_rejects_nonblocking_submissions(self, tmp_path):
        gate = Gate()

        def request_for(seed: int) -> JobRequest:
            profile = dataclasses.replace(DET, seed=seed)
            return JobRequest(
                case=CASE, tool="Gate", profile=profile,
                factory=lambda p: GateTool(gate=gate, seed=p.seed),
            )

        service = CoverageService(
            store=tmp_path / "store", worker_mode="thread", n_workers=1, queue_limit=1
        )
        jobs = []
        try:
            jobs.append(service.submit(request_for(0), budget=Budget(max_executions=50)))
            assert gate.started.wait(timeout=30)  # worker busy, gate closed
            jobs.append(service.submit(request_for(1), budget=Budget(max_executions=50)))
            with pytest.raises(QueueFull):
                service.submit(
                    request_for(2), budget=Budget(max_executions=50), block=False
                )
            assert service.stats()["counters"]["rejected"] == 1
            gate.release.set()
            for job in jobs:
                service.wait(job, timeout=30)
            # Capacity freed: the previously rejected job is admitted now.
            service.wait(
                service.submit(request_for(2), budget=Budget(max_executions=50), block=False),
                timeout=30,
            )
        finally:
            service.close()


class TestLifecycle:
    def test_failed_job_reraises_on_wait(self, tmp_path):
        @dataclasses.dataclass
        class ExplodingTool:
            seed: int = 0
            name: str = "Exploding"

            def generate(self, program, budget):
                raise RuntimeError("boom")

        request = JobRequest(
            case=CASE, tool="Exploding", profile=DET, factory=lambda p: ExplodingTool()
        )
        with CoverageService(store=tmp_path / "store", worker_mode="inline") as service:
            job = service.submit(request, budget=Budget(max_executions=10))
            with pytest.raises(RuntimeError, match="boom"):
                service.wait(job)
            assert service.stats()["counters"]["failed"] == 1
        # Nothing was stored for the failed job.
        assert not (tmp_path / "store" / "runs.jsonl").exists()

    def test_closed_service_rejects_submissions(self):
        service = CoverageService(worker_mode="thread", n_workers=1)
        service.close()
        with pytest.raises(ServiceClosed):
            service.submit(JobRequest(case=CASE, tool="CoverMe", profile=DET))

    def test_unknown_tool_raises_value_error(self):
        with CoverageService(worker_mode="inline") as service:
            with pytest.raises(ValueError, match="unknown tool"):
                service.submit(JobRequest(case=CASE, tool="NoSuchTool", profile=DET))


class TestWarningSurfacing:
    def test_native_degradation_warning_lands_in_job_outcome(self, tmp_path, monkeypatch):
        """Satellite: the one-time native-tier degradation RuntimeWarning
        reaches job results/events instead of dying on a worker's stderr."""
        from repro.instrument.native.cache import NativeUnavailable
        from repro.instrument.program import InstrumentedProgram
        from repro.service.jobs import instrument_for_lookup

        def unavailable(self, *args, **kwargs):
            raise NativeUnavailable("no C compiler in test")

        monkeypatch.setattr(InstrumentedProgram, "native_kernel", unavailable)
        instrument_for_lookup.cache_clear()  # fresh program, fresh warn-once state
        try:
            profile = dataclasses.replace(DET, eval_profile="penalty-native")
            request = JobRequest(case=CASE, tool="CoverMe", profile=profile)
            with CoverageService(store=tmp_path / "store", worker_mode="inline") as service:
                outcome = service.run(request)
        finally:
            instrument_for_lookup.cache_clear()
        assert any("native tier permanently unavailable" in w for w in outcome.warnings)
        warning_events = [e for e in outcome.events if e["event"] == "warning"]
        assert any("native tier permanently unavailable" in e["message"] for e in warning_events)
        # The stored payload is warning-free: records stay byte-identical
        # whether or not a tier degraded en route.
        assert "warnings" not in outcome.payload

    def test_clean_runs_carry_no_degradation_warnings(self, tmp_path):
        request = JobRequest(case=CASE, tool="CoverMe", profile=DET)
        with CoverageService(store=tmp_path / "store", worker_mode="inline") as service:
            outcome = service.run(request)
        assert not any("native tier permanently unavailable" in w for w in outcome.warnings)


class TestProgressEvents:
    def test_engine_progress_streams_into_job_events(self, tmp_path):
        request = JobRequest(case=CASE, tool="CoverMe", profile=DET)
        with CoverageService(store=tmp_path / "store", worker_mode="inline") as service:
            outcome = service.run(request)
        progress = [e for e in outcome.events if e["event"] == "progress"]
        assert progress, "expected at least one engine batch-progress event"
        assert {"batch", "starts_issued", "evaluations", "covered"} <= set(progress[0])
        # Events are observers only: a run with them stores the same bytes
        # as the cache now serves (i.e. they never entered the payload).
        assert "events" not in outcome.payload


# ---------------------------------------------------------------------------
# Bit-identity across entry points and shard counts
# ---------------------------------------------------------------------------


class TestBitIdentityAcrossEntryPoints:
    def test_cli_pipeline_and_daemon_store_identical_records(self, tmp_path, monkeypatch):
        """The tentpole guarantee: the same seeded jobs submitted through
        ``repro run``, ``execute_plan`` (shard counts 1, 2, 4) and the HTTP
        daemon produce identical ``runs.jsonl`` records -- byte-for-byte
        once the one wall-clock field is zeroed."""
        from repro.service.client import ServiceClient
        from repro.service.http import serve_in_background

        monkeypatch.setitem(PROFILES, DET.name, DET)
        spec = get_spec("table2")

        # Entry point 1: the CLI.
        cli_store = tmp_path / "store-cli"
        assert main(["run", "table2", "--profile", DET.name, "--store", str(cli_store)]) == 0
        baseline = _normalized_records(cli_store / "runs.jsonl")
        assert baseline

        # Entry point 2: execute_plan through the service, shard counts 1/2/4.
        plan = plan_jobs([spec], DET)
        for n_shards in (1, 2, 4):
            shard_store = tmp_path / f"store-shards-{n_shards}"
            with RunStore(shard_store) as store:
                execute_plan(
                    plan, store=store, n_workers=2, worker_mode="thread", n_shards=n_shards
                )
            assert _normalized_records(shard_store / "runs.jsonl") == baseline, (
                f"records diverged at n_shards={n_shards}"
            )

        # Entry point 3: the HTTP daemon (CoverMe first per case, so the
        # daemon derives the same baseline budgets the pipeline did).
        daemon_store = tmp_path / "store-daemon"
        service = CoverageService(
            store=daemon_store, worker_mode="thread", n_workers=2, n_shards=2
        )
        try:
            with serve_in_background(service, profiles={DET.name: DET}) as server:
                client = ServiceClient(server.address)
                for case in plan.cases:
                    fp = client.submit(case.key, tool="CoverMe", profile=DET.name)["job"]
                    client.wait_for(fp, timeout=120)
                    for tool in ("Rand", "AFL"):
                        fp = client.submit(case.key, tool=tool, profile=DET.name)["job"]
                        client.wait_for(fp, timeout=120)
        finally:
            service.close()
        assert _normalized_records(daemon_store / "runs.jsonl") == baseline


class TestWorkerPoolJoin:
    """``WorkerPool.join`` must honour one shared deadline and *report*
    stuck workers instead of silently abandoning them (satellite fix: the
    old per-thread timeout multiplied and the result was discarded)."""

    def _pool(self, handler, n_workers=3):
        from repro.service.workers import WorkerPool

        queue = AdmissionQueue(n_shards=n_workers)
        pool = WorkerPool(queue, handler, n_workers=n_workers, n_shards=n_workers)
        return queue, pool

    def test_join_reports_stuck_workers_under_shared_deadline(self):
        import time as _time

        release = threading.Event()
        queue, pool = self._pool(lambda job, worker_id: release.wait(10.0))
        for shard in range(3):
            queue.put(object(), shard)
        deadline = _time.monotonic() + 5.0
        while sum(queue.depths()) and _time.monotonic() < deadline:
            _time.sleep(0.01)  # wait for every worker to pick up its job
        queue.close()
        started = _time.monotonic()
        unjoined = pool.join(timeout=0.3)
        elapsed = _time.monotonic() - started
        try:
            assert sorted(unjoined) == [
                "repro-service-worker-0",
                "repro-service-worker-1",
                "repro-service-worker-2",
            ]
            # Shared deadline: three stuck threads cost ~0.3 s total, not 3x.
            assert elapsed < 1.0
        finally:
            release.set()
        assert pool.join(timeout=5.0) == []

    def test_join_clean_shutdown_returns_empty(self):
        import time as _time

        handled = []
        queue, pool = self._pool(lambda job, worker_id: handled.append(job))
        for shard in range(3):
            queue.put(shard, shard)
        deadline = _time.monotonic() + 5.0
        while len(handled) < 3 and _time.monotonic() < deadline:
            _time.sleep(0.01)
        queue.close()
        assert pool.join(timeout=5.0) == []
        assert sorted(handled) == [0, 1, 2]

    def test_service_stats_surface_unjoined_workers(self, tmp_path):
        service = CoverageService(store=tmp_path / "store", worker_mode="thread", n_workers=2)
        try:
            assert service.stats()["unjoined_workers"] == []
        finally:
            service.close()
        assert service.stats()["unjoined_workers"] == []
