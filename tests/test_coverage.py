"""Tests for the Gcov substrate: branch and line coverage measurement."""

from __future__ import annotations

import pytest

from repro.coverage.branch import BranchCoverage
from repro.coverage.gcov import GcovReport, measure_coverage
from repro.coverage.line import LineCoverage, executable_lines
from repro.instrument.program import instrument
from repro.instrument.runtime import BranchId
from tests import sample_programs as sp


class TestBranchCoverage:
    def test_accumulates_over_runs(self, paper_foo_program):
        coverage = BranchCoverage(paper_foo_program)
        new = coverage.run((0.7,))
        assert new == {BranchId(0, True), BranchId(1, False)}
        assert coverage.percent == 50.0
        coverage.run((2.0,))  # x > 1 and x*x == 4: covers 0F and 1T
        assert coverage.percent == 100.0
        assert coverage.is_complete()
        assert coverage.uncovered() == frozenset()

    def test_run_all_counts_executions(self, paper_foo_program):
        coverage = BranchCoverage(paper_foo_program)
        coverage.run_all([(0.7,), (5.0,), (1.0,)])
        assert coverage.executions == 3

    def test_fresh_tracker_starts_at_zero(self):
        program = instrument(sp.helper_goo)
        coverage = BranchCoverage(program)
        assert coverage.percent == 0.0
        coverage.run((0.0,))
        assert coverage.n_covered == 1


class TestLineCoverage:
    def test_executable_lines_excludes_def_line(self):
        lines = executable_lines(sp.paper_foo)
        assert lines
        assert sp.paper_foo.__code__.co_firstlineno not in lines

    def test_partial_then_full(self):
        coverage = LineCoverage(sp.paper_foo)
        coverage.run((0.7,))
        partial = coverage.percent
        assert 0.0 < partial < 100.0
        coverage.run((5.0,))
        coverage.run((1.0,))
        assert coverage.percent == 100.0

    def test_exceptions_do_not_break_measurement(self):
        coverage = LineCoverage(sp.raises_for_small)
        coverage.run((0.5,))
        assert coverage.n_covered >= 1

    def test_run_all(self):
        coverage = LineCoverage(sp.nested_branches)
        coverage.run_all([(1.0, 1.0), (-1.0, 5.0)])
        assert coverage.executions == 2


class TestGcovReport:
    def test_measure_coverage_combines_branch_and_line(self, paper_foo_program):
        report = measure_coverage(
            paper_foo_program, [(0.7,), (5.0,), (1.0,)], original=sp.paper_foo
        )
        assert report.branch_percent == 100.0
        assert report.line_percent == 100.0
        assert report.executions == 3
        assert "paper_foo" in report.format_row()

    def test_zero_denominators(self):
        report = GcovReport("p", 0, 0, 0, 0, 0)
        assert report.branch_percent == 100.0
        assert report.line_percent == 100.0

    def test_without_original_skips_lines(self, paper_foo_program):
        report = measure_coverage(paper_foo_program, [(0.7,)])
        assert report.n_lines == 0
