"""Tests for the IEEE-754 word-access helpers used by the Fdlibm port."""

from __future__ import annotations

import math
import struct

import pytest
from hypothesis import given, strategies as st

from repro.fdlibm import bits

any_double = st.floats(allow_nan=False, width=64)
any_bits = st.integers(min_value=0, max_value=2**64 - 1)


class TestWordAccess:
    def test_known_patterns(self):
        assert bits.high_word(1.0) == 0x3FF00000
        assert bits.low_word(1.0) == 0
        assert bits.high_word(float("inf")) == 0x7FF00000
        assert bits.high_word(2.0**-27) == 0x3E400000
        assert bits.high_word(-1.0) == 0xBFF00000 - 0x100000000

    def test_high_word_is_signed(self):
        assert bits.high_word(-1.0) < 0
        assert bits.high_word(1.0) > 0

    def test_paper_fig1_bit_twiddling(self):
        """The tanh example: jx = high word, ix = jx & 0x7fffffff."""
        x = -3.5
        jx = bits.high_word(x)
        ix = jx & 0x7FFFFFFF
        assert jx < 0
        assert ix == bits.high_word(3.5)

    def test_abs_high_word(self):
        assert bits.abs_high_word(-2.0) == bits.high_word(2.0)

    def test_set_high_low_word(self):
        x = 1.0
        y = bits.set_high_word(x, 0x40000000)
        assert y == 2.0
        z = bits.set_low_word(2.0, 1)
        assert z != 2.0
        assert bits.low_word(z) == 1

    def test_fabs_and_copysign(self):
        assert bits.fabs(-3.25) == 3.25
        assert bits.fabs(3.25) == 3.25
        assert bits.copysign_bit(3.0, -1.0) == -3.0
        assert bits.copysign_bit(-3.0, 1.0) == 3.0

    def test_zero_signs(self):
        assert bits.high_word(0.0) == 0
        assert bits.high_word(-0.0) == -(2**31)


class TestRoundTrips:
    @given(x=any_double)
    def test_words_round_trip(self, x):
        hi, lo = bits.words(x)
        assert bits.from_words(hi, lo) == x or (math.isnan(x) and math.isnan(bits.from_words(hi, lo)))

    @given(x=any_double)
    def test_bits_round_trip(self, x):
        assert bits.bits_to_double(bits.double_to_bits(x)) == x

    @given(raw=any_bits)
    def test_reverse_round_trip(self, raw):
        value = bits.bits_to_double(raw)
        if math.isnan(value):
            # NaN payloads are preserved by struct round-tripping.
            assert math.isnan(bits.bits_to_double(bits.double_to_bits(value)))
        else:
            assert bits.double_to_bits(value) == raw

    @given(x=any_double)
    def test_matches_struct_layout(self, x):
        packed = struct.pack(">d", x)
        hi_ref = int.from_bytes(packed[:4], "big")
        lo_ref = int.from_bytes(packed[4:], "big")
        hi, lo = bits.words(x)
        assert lo == lo_ref
        assert hi & 0xFFFFFFFF == hi_ref

    @given(x=any_double)
    def test_fabs_clears_sign(self, x):
        assert bits.high_word(bits.fabs(x)) >= 0
