"""Integration tests: CoverMe end-to-end on real Fdlibm benchmark functions."""

from __future__ import annotations

import pytest

from repro.core.config import CoverMeConfig
from repro.core.coverme import CoverMe
from repro.coverage.gcov import measure_coverage
from repro.fdlibm.suite import get_case
from repro.instrument.program import instrument


def run_case(name: str, n_start: int = 60, seed: int = 0, time_budget: float = 8.0):
    case = get_case(name)
    config = CoverMeConfig(n_start=n_start, n_iter=5, seed=seed, time_budget=time_budget)
    coverme = CoverMe(case.entry, config)
    return case, coverme.run()


class TestPaperExampleFunctions:
    def test_tanh_reaches_high_coverage_quickly(self):
        """The paper's Fig. 1 example: full coverage in under a second of search."""
        case, result = run_case("tanh", n_start=120, seed=2, time_budget=15.0)
        assert result.branch_coverage_percent >= 90.0
        assert result.wall_time < 60.0

    def test_kernel_cos_optimal_coverage_with_infeasible_branch(self):
        """Sect. D: 87.5% is optimal because one branch is infeasible."""
        case, result = run_case("kernel_cos", n_start=80, seed=3)
        assert result.branch_coverage_percent >= 75.0
        assert result.branch_coverage_percent <= 87.5 + 1e-9

    def test_sin_full_coverage(self):
        case, result = run_case("sin", n_start=60, seed=4)
        assert result.branch_coverage_percent == 100.0

    def test_logb_small_function(self):
        # logb has 6 branches; the subnormal branch is out of reach (Sect. D),
        # so 4-5 covered branches is the expected outcome at this budget.
        case, result = run_case("logb", n_start=60, seed=5)
        assert result.branch_coverage_percent >= 65.0

    def test_generated_inputs_replay_to_the_same_coverage(self):
        case, result = run_case("tanh", n_start=80, seed=6)
        program = instrument(case.entry)
        report = measure_coverage(program, result.inputs, original=case.entry)
        assert report.covered_branches == result.covered_branches
        assert report.line_percent >= report.branch_percent * 0.8


class TestCoverMeBeatsRandomOnFdlibm:
    def test_tanh_random_gap(self):
        """Reproduce the shape of Table 2: CoverMe >> Rand on s_tanh.c."""
        from repro.baselines.harness import Budget, run_tool
        from repro.baselines.random_testing import RandomTester

        case, result = run_case("tanh", n_start=100, seed=7)
        program = instrument(case.entry)
        rand = run_tool(
            RandomTester(seed=7), program, Budget(max_executions=10 * max(result.evaluations, 1000))
        )
        assert result.branch_coverage_percent > rand.branch_coverage_percent
