"""Tests for the optimizer backend registry and configuration validation."""

from __future__ import annotations

import pytest

from repro.core.config import CoverMeConfig
from repro.core.coverme import cover
from repro.optimize.basinhopping import basinhopping
from repro.optimize.local import (
    available_local_minimizers,
    register_local_minimizer,
    unregister_local_minimizer,
)
from repro.optimize.registry import (
    available_backends,
    get_backend,
    register_backend,
    unregister_backend,
)
from tests import sample_programs as sp


class TestBackendRegistry:
    def test_builtin_backends_registered(self):
        assert {"builtin", "scipy"} <= set(available_backends())
        assert callable(get_backend("builtin"))
        assert callable(get_backend("SCIPY"))  # lookup is case-insensitive

    def test_unknown_backend_error_lists_known(self):
        with pytest.raises(ValueError, match="builtin"):
            get_backend("does-not-exist")

    def test_register_and_unregister(self):
        try:
            register_backend("probe-backend", basinhopping)
            assert get_backend("probe-backend") is basinhopping
            with pytest.raises(ValueError, match="already registered"):
                register_backend("probe-backend", basinhopping)
            register_backend("probe-backend", basinhopping, replace=True)
        finally:
            unregister_backend("probe-backend")
        assert "probe-backend" not in available_backends()

    def test_decorator_form(self):
        try:

            @register_backend("probe-decorated")
            def my_backend(func, x0, **kwargs):
                return basinhopping(func, x0, **kwargs)

            assert get_backend("probe-decorated") is my_backend
        finally:
            unregister_backend("probe-decorated")

    def test_non_callable_rejected(self):
        with pytest.raises(TypeError):
            register_backend("probe-bad", "not callable")

    def test_custom_backend_drives_coverme_end_to_end(self):
        calls = {"n": 0}

        def counting_backend(func, x0, **kwargs):
            calls["n"] += 1
            return basinhopping(func, x0, **kwargs)

        try:
            register_backend("probe-counting", counting_backend)
            result = cover(
                sp.single_branch,
                CoverMeConfig(n_start=8, seed=0, backend="probe-counting"),
            )
            assert result.branch_coverage == 1.0
            assert calls["n"] > 0
        finally:
            unregister_backend("probe-counting")


class TestLocalMinimizerRegistry:
    def test_known_names_present(self):
        assert {"powell", "nelder-mead", "compass"} <= set(available_local_minimizers())

    def test_register_local_minimizer(self):
        try:

            @register_local_minimizer("probe-lm")
            def probe_lm(func, x0, **options):
                from repro.optimize.local.powell import powell

                return powell(func, x0, **options)

            config = CoverMeConfig(n_start=6, seed=1, local_minimizer="probe-lm")
            result = cover(sp.single_branch, config)
            assert result.branch_coverage == 1.0
        finally:
            unregister_local_minimizer("probe-lm")


class TestConfigValidation:
    def test_rejects_bad_step_size_and_start_scale(self):
        with pytest.raises(ValueError, match="step_size"):
            CoverMeConfig(step_size=0.0)
        with pytest.raises(ValueError, match="step_size"):
            CoverMeConfig(step_size=-1.0)
        with pytest.raises(ValueError, match="start_scale"):
            CoverMeConfig(start_scale=0.0)

    def test_rejects_unknown_local_minimizer(self):
        with pytest.raises(ValueError, match="unknown local minimizer"):
            CoverMeConfig(local_minimizer="bfgs")

    def test_scipy_backend_accepts_scipy_method_names(self):
        # The registry only gates the builtin backend's LM names; scipy
        # interprets the name itself, so any scipy.optimize method is fine.
        config = CoverMeConfig(backend="scipy", local_minimizer="L-BFGS-B")
        assert config.local_minimizer == "L-BFGS-B"
        with pytest.raises(ValueError, match="non-empty"):
            CoverMeConfig(backend="scipy", local_minimizer="")

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            CoverMeConfig(backend="magic")

    def test_accepts_freshly_registered_backend(self):
        try:
            register_backend("probe-config", basinhopping)
            config = CoverMeConfig(backend="probe-config")
            assert config.backend == "probe-config"
        finally:
            unregister_backend("probe-config")

    def test_rejects_engine_knob_misuse(self):
        with pytest.raises(ValueError, match="n_workers"):
            CoverMeConfig(n_workers=0)
        with pytest.raises(ValueError, match="worker mode"):
            CoverMeConfig(worker_mode="fibers")
        with pytest.raises(ValueError, match="start strategy"):
            CoverMeConfig(start_strategy="sobol")
        with pytest.raises(ValueError, match="batch_size"):
            CoverMeConfig(batch_size=0)

    def test_effective_batch_size(self):
        assert CoverMeConfig().effective_batch_size() >= 1
        assert CoverMeConfig(batch_size=3).effective_batch_size() == 3
