"""Tests for the baseline tools: Rand, the AFL-style fuzzer, the Austin-style AVM."""

from __future__ import annotations

import pytest

from repro.baselines.afl import AFLFuzzer, _bucket
from repro.baselines.austin import AustinTester, _normalize
from repro.baselines.harness import Budget, clip_inputs, run_tool
from repro.baselines.random_testing import RandomTester
from repro.instrument.program import instrument
from tests import sample_programs as sp


@pytest.fixture(scope="module")
def simple_program():
    return instrument(sp.single_branch)


@pytest.fixture(scope="module")
def nested_two_arg_program():
    return instrument(sp.nested_branches)


@pytest.fixture(scope="module")
def equality_program():
    return instrument(sp.equality_chain)


class TestBudget:
    def test_execution_budget(self):
        clock = Budget(max_executions=3).start()
        assert not clock.exhausted()
        clock.consume(3)
        assert clock.exhausted()

    def test_time_budget(self):
        clock = Budget(max_seconds=0.0).start()
        assert clock.exhausted()

    def test_unlimited_budget(self):
        clock = Budget().start()
        clock.consume(10_000)
        assert not clock.exhausted()

    def test_clip_inputs(self):
        assert clip_inputs([(1, 2), (3, 4), (5, 6)], 2) == [(1.0, 2.0), (3.0, 4.0)]


class TestRandomTester:
    def test_covers_wide_branches(self, simple_program):
        tool = RandomTester(seed=0)
        inputs = tool.generate(simple_program, Budget(max_executions=200))
        assert inputs
        summary = run_tool(tool, simple_program, Budget(max_executions=200))
        assert summary.branch_coverage_percent == 100.0

    def test_misses_equality_branches(self, equality_program):
        """Random sampling practically never hits x == 1024.0 exactly."""
        summary = run_tool(RandomTester(seed=1), equality_program, Budget(max_executions=2000))
        assert summary.branch_coverage_percent < 100.0

    def test_respects_budget(self, nested_two_arg_program):
        tool = RandomTester(seed=2)
        clock_budget = Budget(max_executions=50)
        tool.generate(nested_two_arg_program, clock_budget)
        summary = run_tool(tool, nested_two_arg_program, Budget(max_executions=50))
        assert summary.executions <= 60  # replay of kept inputs only


class TestAFL:
    def test_bucketing_is_monotone(self):
        values = [_bucket(n) for n in (1, 2, 3, 4, 8, 16, 32, 128, 1000)]
        assert values == sorted(values)

    def test_finds_bit_pattern_branches(self, simple_program):
        summary = run_tool(AFLFuzzer(seed=3), simple_program, Budget(max_executions=2000))
        assert summary.branch_coverage_percent == 100.0

    def test_beats_random_on_special_values(self):
        """AFL's interesting-value mutations reach inf/NaN-guarded branches."""
        program = instrument(sp.early_return)  # needs a NaN and a >= 100 input
        afl = run_tool(AFLFuzzer(seed=4), program, Budget(max_executions=3000))
        rand = run_tool(RandomTester(seed=4, low=-1.0, high=1.0), program, Budget(max_executions=3000))
        assert afl.branch_coverage_percent >= rand.branch_coverage_percent
        assert afl.branch_coverage_percent == 100.0

    def test_keeps_only_coverage_increasing_inputs(self, nested_two_arg_program):
        tool = AFLFuzzer(seed=5)
        inputs = tool.generate(nested_two_arg_program, Budget(max_executions=1500))
        assert 0 < len(inputs) <= nested_two_arg_program.n_branches


class TestAustin:
    def test_normalization_bounds(self):
        assert _normalize(0.0) == 0.0
        assert 0.0 < _normalize(10.0) < 1.0

    def test_covers_inequality_branches(self, nested_two_arg_program):
        summary = run_tool(AustinTester(seed=6), nested_two_arg_program, Budget(max_executions=4000))
        assert summary.branch_coverage_percent >= 75.0

    def test_guided_search_solves_threshold(self):
        program = instrument(sp.early_return)
        summary = run_tool(AustinTester(seed=7), program, Budget(max_executions=4000))
        # The x >= 100 branch requires walking uphill from the seed values.
        assert summary.branch_coverage_percent >= 75.0

    def test_respects_budget(self, equality_program):
        budget = Budget(max_executions=300)
        tool = AustinTester(seed=8)
        tool.generate(equality_program, budget)
        # No assertion on coverage: just ensure the run terminates quickly.


class TestToolSummaries:
    def test_run_tool_reports_lines_when_asked(self, simple_program):
        summary = run_tool(
            RandomTester(seed=9), simple_program, Budget(max_executions=100), original=sp.single_branch
        )
        assert summary.n_lines > 0
        assert 0.0 <= summary.line_coverage_percent <= 100.0

    def test_zero_branch_program_reports_full_coverage(self):
        summary = run_tool(RandomTester(seed=10), instrument(sp.single_branch), Budget(max_executions=10))
        assert 0.0 <= summary.branch_coverage_percent <= 100.0
