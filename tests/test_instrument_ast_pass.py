"""Tests for the AST instrumentation pass."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.instrument.ast_pass import (
    HANDLE_NAME,
    assign_labels,
    collect_conditionals,
    instrument_source,
)
from repro.instrument.program import instrument
from tests import sample_programs as sp


def parse_function(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


class TestCollectConditionals:
    def test_counts_ifs_and_whiles(self):
        func = parse_function(
            """
            def f(x):
                if x > 0:
                    while x > 1:
                        x -= 1
                for i in range(3):
                    if x == i:
                        return i
                return x
            """
        )
        assert len(collect_conditionals(func)) == 3

    def test_skips_nested_function_defs(self):
        func = parse_function(
            """
            def f(x):
                def inner(y):
                    if y > 0:
                        return 1
                    return 0
                if x > 0:
                    return inner(x)
                return 0
            """
        )
        assert len(collect_conditionals(func)) == 1

    def test_source_order(self):
        func = parse_function(
            """
            def f(x):
                if x > 0:
                    if x > 1:
                        return 2
                if x < -1:
                    return -1
                return 0
            """
        )
        stmts = collect_conditionals(func)
        labels, _ = assign_labels(func)
        assert [labels[id(s)] for s in stmts] == [0, 1, 2]

    def test_elif_is_a_separate_conditional(self):
        func = parse_function(
            """
            def f(x):
                if x > 0:
                    return 1
                elif x < 0:
                    return -1
                return 0
            """
        )
        assert len(collect_conditionals(func)) == 2


class TestRewriting:
    def test_simple_comparison_is_rewritten(self):
        tree, conds, _, _ = instrument_source(
            "def f(x):\n    if x <= 1.0:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.test(0, '<=', x, 1.0)" in text
        assert len(conds) == 1
        assert conds[0].kind == "if"

    def test_negated_comparison_flips_operator(self):
        tree, _, _, _ = instrument_source(
            "def f(x):\n    if not x < 0.0:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert "'>='" in text

    def test_boolop_of_comparisons(self):
        tree, conds, _, _ = instrument_source(
            "def f(x, y):\n    if x > 0.0 and y > 0.0:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        # Two indexed cmp leaves composed by a postfix program: leaves 0 and
        # 1 reduced by tree_and(2) == -4.
        assert text.count(f"{HANDLE_NAME}.cmp") == 2
        assert f"{HANDLE_NAME}.resolve(0, (0, 1, -4)" in text
        assert conds[0].form == "boolean"

    def test_non_comparison_falls_back_to_truth(self):
        tree, _, _, _ = instrument_source(
            "def f(flag):\n    if flag:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.truth(0, flag)" in text

    def test_while_condition_is_rewritten(self):
        tree, conds, _, _ = instrument_source(
            "def f(x):\n    while x > 1.0:\n        x = x / 2\n    return x\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.test(0, '>', x, 1.0)" in text
        assert conds[0].kind == "while"

    def test_start_label_offsets_labels(self):
        _, conds, _, _ = instrument_source(
            "def f(x):\n    if x > 0.0:\n        return 1\n    return 0\n", start_label=7
        )
        assert conds[0].label == 7

    def test_missing_function_raises(self):
        with pytest.raises(ValueError):
            instrument_source("x = 1\n", function_name="nope")

    def test_chained_comparison_lowered_to_conjunction(self):
        """``a < b < c`` splits into leaves with a single-evaluation temporary."""
        tree, conds, _, _ = instrument_source(
            "def f(x):\n    if 0.0 < x < 1.0:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.truth" not in text
        assert text.count(f"{HANDLE_NAME}.cmp") == 2
        assert ":= x" in text  # the shared middle operand is bound once
        assert conds[0].form == "chained"


class TestTreeLowering:
    """Nested trees, De Morgan, chains and ternaries become composition programs."""

    def test_nested_boolean_tree(self):
        tree, conds, _, _ = instrument_source(
            "def f(x, y):\n"
            "    if x < 0.0 or (x == 0.0 and y <= 5.0):\n"
            "        return 1\n"
            "    return 0\n"
        )
        text = ast.unparse(tree)
        assert text.count(f"{HANDLE_NAME}.cmp") == 3
        # Postfix: leaf 0, (leaves 1 2 -> and), or.
        assert f"{HANDLE_NAME}.resolve(0, (0, 1, 2, -4, -5)" in text
        assert conds[0].form == "boolean"

    def test_not_over_tree_applies_de_morgan(self):
        tree, conds, _, _ = instrument_source(
            "def f(x, y):\n"
            "    if not (x > 0.0 and y > 0.0):\n"
            "        return 1\n"
            "    return 0\n"
        )
        text = ast.unparse(tree)
        # The negation is pushed to the leaves: flipped operators, or-node.
        assert text.count("'<='") == 2
        assert f"{HANDLE_NAME}.resolve(0, (0, 1, -5)" in text
        assert conds[0].form == "boolean"

    def test_not_over_truthiness_leaf_sets_negation_flag(self):
        tree, _, _, _ = instrument_source(
            "def f(flag, x):\n"
            "    if not (flag or x > 0.0):\n"
            "        return 1\n"
            "    return 0\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.tleaf(0, 0, flag, True)" in text
        assert "'<='" in text  # the comparison leaf is flipped too

    def test_ternary_composes_both_sides(self):
        tree, conds, _, _ = instrument_source(
            "def f(x, y):\n"
            "    if x > 0.0 if y > 0.0 else x < 0.0:\n"
            "        return 1\n"
            "    return 0\n"
        )
        text = ast.unparse(tree)
        # (cond and body) or (not cond and orelse): the condition's leaf 0 is
        # referenced twice, once under TREE_NOT (-1).
        assert f"{HANDLE_NAME}.resolve(0, (0, 1, -4, 0, -1, 2, -4, -5)" in text
        assert conds[0].form == "ternary"
        assert "if" in text  # the ternary expression shape is preserved

    def test_bare_non_comparison_test_is_promoted(self):
        _, conds, _, _ = instrument_source(
            "def f(m):\n    if m & 1:\n        return 1\n    return 0\n"
        )
        assert conds[0].form == "promoted"

    def test_oversized_tree_falls_back_to_truth(self):
        clauses = " or ".join(f"x > {i}.0" for i in range(70))
        _, conds, _, _ = instrument_source(
            f"def f(x):\n    if {clauses}:\n        return 1\n    return 0\n"
        )
        assert conds[0].form == "truth"

    def test_deeply_nested_ternary_falls_back_fast(self):
        """Regression: condition-position ternaries double the token program
        per nesting level; the ceiling must trip during lowering, not after
        an exponential list construction."""
        expr = "x > 1.0"
        for _ in range(24):
            expr = f"(x > 1.0 if {expr} else x < -1.0)"
        _, conds, _, _ = instrument_source(
            f"def f(x):\n    if {expr}:\n        return 1\n    return 0\n"
        )
        assert conds[0].form == "truth"

    def test_chain_operands_evaluated_exactly_once(self):
        calls.clear()
        program = instrument(chain_calls)
        value, _, record = program.run((0.5,))
        assert value == chain_calls_reference(0.5)
        # One execution evaluates x through traced() exactly once even though
        # the chain references it in two lowered comparisons.
        assert calls == [0.5, 0.5]  # instrumented + reference run
        assert len(record.path) == 1

    def test_forms_inventory_across_suite_samples(self):
        program = instrument(sp.nested_boolean)
        assert program.conditional_forms() == {"boolean": 2}
        assert program.fallback_conditionals == ()


calls: list[float] = []


def traced(value: float) -> float:
    calls.append(value)
    return value


def chain_calls(x: float) -> int:
    if 0.0 < traced(x) < 1.0:
        return 1
    return 0


def chain_calls_reference(x: float) -> int:
    return 1 if 0.0 < traced(x) < 1.0 else 0


class TestSemanticsPreserved:
    """Instrumented programs must compute exactly what the original computes."""

    @pytest.mark.parametrize(
        "func,args",
        [
            (sp.single_branch, [(0.5,), (2.0,)]),
            (sp.paper_foo, [(0.7,), (1.0,), (-3.0,), (5.2,)]),
            (sp.nested_branches, [(1.0, 1.0), (1.0, -1.0), (-1.0, 5.0), (-1.0, 0.0)]),
            (sp.loop_program, [(0.5,), (9.0,), (1.0e6,)]),
            (sp.boolean_condition, [(1.0, 1.0), (-20.0, 0.0), (0.0, 0.0)]),
            (sp.truthiness, [(5.0,), (1.0,)]),
            (sp.three_dimensional, [(1.0, 2.0, 7.0), (20.0, 1.0, -8.0), (0.0, 0.0, 0.0)]),
            (sp.nested_boolean, [(-2.0, 0.0), (0.0, 3.0), (0.0, 9.0), (5.0, 1.0), (1.0, 1.0)]),
            (sp.demorgan, [(1.0, 1.0), (-1.0, 2.0), (11.0, 0.5), (20.0, 20.0)]),
            (sp.chained_comparison, [(0.5, 0.0), (-3.0, 1.0), (12.0, -20.0), (5.0, 0.0)]),
            (sp.ternary_test, [(2.0, 1.0), (0.5, 1.0), (-2.0, -1.0), (0.0, -1.0)]),
            (sp.mixed_leaves, [(0.0, 5.0), (4.0, 0.0), (1.0, -3.0), (0.0, 0.0)]),
        ],
    )
    def test_same_return_values(self, func, args):
        program = instrument(func)
        for point in args:
            value, _, _ = program.run(point)
            assert value == func(*point)
