"""Tests for the AST instrumentation pass."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.instrument.ast_pass import (
    HANDLE_NAME,
    assign_labels,
    collect_conditionals,
    instrument_source,
)
from repro.instrument.program import instrument
from tests import sample_programs as sp


def parse_function(source: str) -> ast.FunctionDef:
    tree = ast.parse(textwrap.dedent(source))
    return tree.body[0]


class TestCollectConditionals:
    def test_counts_ifs_and_whiles(self):
        func = parse_function(
            """
            def f(x):
                if x > 0:
                    while x > 1:
                        x -= 1
                for i in range(3):
                    if x == i:
                        return i
                return x
            """
        )
        assert len(collect_conditionals(func)) == 3

    def test_skips_nested_function_defs(self):
        func = parse_function(
            """
            def f(x):
                def inner(y):
                    if y > 0:
                        return 1
                    return 0
                if x > 0:
                    return inner(x)
                return 0
            """
        )
        assert len(collect_conditionals(func)) == 1

    def test_source_order(self):
        func = parse_function(
            """
            def f(x):
                if x > 0:
                    if x > 1:
                        return 2
                if x < -1:
                    return -1
                return 0
            """
        )
        stmts = collect_conditionals(func)
        labels, _ = assign_labels(func)
        assert [labels[id(s)] for s in stmts] == [0, 1, 2]

    def test_elif_is_a_separate_conditional(self):
        func = parse_function(
            """
            def f(x):
                if x > 0:
                    return 1
                elif x < 0:
                    return -1
                return 0
            """
        )
        assert len(collect_conditionals(func)) == 2


class TestRewriting:
    def test_simple_comparison_is_rewritten(self):
        tree, conds, _, _ = instrument_source(
            "def f(x):\n    if x <= 1.0:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.test(0, '<=', x, 1.0)" in text
        assert len(conds) == 1
        assert conds[0].kind == "if"

    def test_negated_comparison_flips_operator(self):
        tree, _, _, _ = instrument_source(
            "def f(x):\n    if not x < 0.0:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert "'>='" in text

    def test_boolop_of_comparisons(self):
        tree, _, _, _ = instrument_source(
            "def f(x, y):\n    if x > 0.0 and y > 0.0:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert "'and'" in text
        assert text.count(f"{HANDLE_NAME}.cmp") == 2

    def test_non_comparison_falls_back_to_truth(self):
        tree, _, _, _ = instrument_source(
            "def f(flag):\n    if flag:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.truth(0, flag)" in text

    def test_while_condition_is_rewritten(self):
        tree, conds, _, _ = instrument_source(
            "def f(x):\n    while x > 1.0:\n        x = x / 2\n    return x\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.test(0, '>', x, 1.0)" in text
        assert conds[0].kind == "while"

    def test_start_label_offsets_labels(self):
        _, conds, _, _ = instrument_source(
            "def f(x):\n    if x > 0.0:\n        return 1\n    return 0\n", start_label=7
        )
        assert conds[0].label == 7

    def test_missing_function_raises(self):
        with pytest.raises(ValueError):
            instrument_source("x = 1\n", function_name="nope")

    def test_chained_comparison_not_split(self):
        """``a < b < c`` is not a single supported comparison; falls back to truth."""
        tree, _, _, _ = instrument_source(
            "def f(x):\n    if 0.0 < x < 1.0:\n        return 1\n    return 0\n"
        )
        text = ast.unparse(tree)
        assert f"{HANDLE_NAME}.truth" in text


class TestSemanticsPreserved:
    """Instrumented programs must compute exactly what the original computes."""

    @pytest.mark.parametrize(
        "func,args",
        [
            (sp.single_branch, [(0.5,), (2.0,)]),
            (sp.paper_foo, [(0.7,), (1.0,), (-3.0,), (5.2,)]),
            (sp.nested_branches, [(1.0, 1.0), (1.0, -1.0), (-1.0, 5.0), (-1.0, 0.0)]),
            (sp.loop_program, [(0.5,), (9.0,), (1.0e6,)]),
            (sp.boolean_condition, [(1.0, 1.0), (-20.0, 0.0), (0.0, 0.0)]),
            (sp.truthiness, [(5.0,), (1.0,)]),
            (sp.three_dimensional, [(1.0, 2.0, 7.0), (20.0, 1.0, -8.0), (0.0, 0.0, 0.0)]),
        ],
    )
    def test_same_return_values(self, func, args):
        program = instrument(func)
        for point in args:
            value, _, _ = program.run(point)
            assert value == func(*point)
