"""Tests for the Def. 4.2 penalty policy."""

from __future__ import annotations

import pytest

from repro.core.pen import CoverMePenalty
from repro.core.saturation import SaturationTracker
from repro.instrument.runtime import BranchId


class TestPenaltyCases:
    @pytest.fixture
    def tracker(self, paper_foo_program):
        return SaturationTracker(paper_foo_program)

    def test_case_a_neither_saturated_returns_zero(self, tracker):
        pen = CoverMePenalty(tracker)
        assert pen.penalty(0, 3.0, 5.0, True, 1.0) == 0.0

    def test_case_b_true_unsaturated_returns_distance_to_true(self, tracker):
        tracker.mark_infeasible(BranchId(0, False))  # false arm saturated
        pen = CoverMePenalty(tracker)
        assert pen.penalty(0, 7.0, 0.0, False, 1.0) == 7.0

    def test_case_b_false_unsaturated_returns_distance_to_false(self, tracker):
        tracker.mark_infeasible(BranchId(0, True))
        pen = CoverMePenalty(tracker)
        assert pen.penalty(0, 0.0, 9.0, True, 1.0) == 9.0

    def test_case_c_both_saturated_keeps_previous_r(self, tracker):
        tracker.mark_infeasible(BranchId(0, True))
        tracker.mark_infeasible(BranchId(0, False))
        pen = CoverMePenalty(tracker)
        assert pen.penalty(0, 4.0, 4.0, True, 0.125) == 0.125

    def test_missing_distance_keeps_previous_r(self, tracker):
        tracker.mark_infeasible(BranchId(0, False))
        pen = CoverMePenalty(tracker)
        assert pen.penalty(0, None, None, True, 0.5) == 0.5
