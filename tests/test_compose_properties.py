"""Property-style tests for composed branch distances (Eq. 8) and profile parity.

Random nested and/or/not/chained/ternary trees over numeric leaves are
generated as real Python conditionals, instrumented, and executed on random
inputs.  Two properties must hold on every execution:

* **Eq. 8** -- the composed ``(d_true, d_false)`` of the whole test is
  non-negative and zero exactly on the side the test actually took;
* **profile parity** -- :class:`FastRuntime` (the ``penalty``/``coverage``
  profiles) computes bit-identical ``r`` and coverage to the recording
  :class:`Runtime` + ``CoverMePenalty`` (the ``full-trace`` profile) under
  random saturation states.
"""

from __future__ import annotations

import ast
import random
import struct

import numpy as np
import pytest

from repro.core.pen import CoverMePenalty
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.instrument.ast_pass import HANDLE_NAME, instrument_source
from repro.instrument.runtime import (
    BranchId,
    ExecutionProfile,
    FastRuntime,
    Runtime,
    RuntimeHandle,
    branch_mask,
)
from tests import sample_programs as sp

N_VARS = 3
N_TREES = 30
N_POINTS = 12


class _SaturatedStub:
    def __init__(self, branches):
        self.saturated = frozenset(branches)


def _gen_leaf(rng: random.Random) -> str:
    kind = rng.random()
    var = f"x{rng.randrange(N_VARS)}"
    const = round(rng.uniform(-4.0, 4.0) * 4.0) / 4.0  # friendly constants
    if kind < 0.55:
        op = rng.choice(["<", "<=", ">", ">=", "==", "!="])
        return f"{var} {op} {const}"
    if kind < 0.75:  # chained comparison
        op1, op2 = rng.choice(["<", "<="]), rng.choice(["<", "<="])
        hi = const + round(rng.uniform(0.0, 4.0) * 4.0) / 4.0
        return f"{const} {op1} {var} {op2} {hi}"
    if kind < 0.9:  # truthiness over an arithmetic value (promoted != 0)
        return f"({var} - {const})"
    return f"not {var} > {const}"


def _gen_tree(rng: random.Random, depth: int) -> str:
    if depth <= 0:
        return _gen_leaf(rng)
    kind = rng.random()
    if kind < 0.35:
        parts = [_gen_tree(rng, depth - 1) for _ in range(rng.choice([2, 2, 3]))]
        return "(" + " and ".join(parts) + ")"
    if kind < 0.7:
        parts = [_gen_tree(rng, depth - 1) for _ in range(rng.choice([2, 2, 3]))]
        return "(" + " or ".join(parts) + ")"
    if kind < 0.85:
        return f"(not {_gen_tree(rng, depth - 1)})"
    cond = _gen_tree(rng, depth - 1)
    body = _gen_tree(rng, depth - 1)
    orelse = _gen_tree(rng, depth - 1)
    return f"({body} if {cond} else {orelse})"


def _build(test_expr: str):
    """Compile one instrumented conditional function plus its original twin."""
    params = ", ".join(f"x{i}" for i in range(N_VARS))
    source = f"def f({params}):\n    if {test_expr}:\n        return 1\n    return 0\n"
    tree, conds, _, _ = instrument_source(source)
    handle = RuntimeHandle()
    namespace = {HANDLE_NAME: handle}
    exec(compile(tree, "<compose-property>", "exec"), namespace)  # noqa: S102
    original_ns: dict = {}
    exec(compile(ast.parse(source), "<compose-original>", "exec"), original_ns)  # noqa: S102
    return namespace["f"], original_ns["f"], handle, conds


def _random_saturation(rng: random.Random) -> frozenset[BranchId]:
    branches = set()
    for outcome in (True, False):
        if rng.random() < 0.5:
            branches.add(BranchId(0, outcome))
    return frozenset(branches)


def _bits(value: float) -> bytes:
    return struct.pack("<d", value)


@pytest.mark.parametrize("seed", range(N_TREES))
def test_random_trees_satisfy_eq8_and_profile_parity(seed):
    rng = random.Random(seed)
    expr = _gen_tree(rng, rng.choice([1, 2, 2, 3]))
    instrumented, original, handle, conds = _build(expr)
    assert conds[0].form in {"boolean", "chained", "ternary"} or "not" in expr

    for _ in range(N_POINTS):
        args = tuple(round(rng.uniform(-5.0, 5.0) * 4.0) / 4.0 for _ in range(N_VARS))
        saturated = _random_saturation(rng)

        recording = Runtime(policy=CoverMePenalty(_SaturatedStub(saturated)))
        handle.install(recording)
        recording.begin()
        value = instrumented(*args)
        assert value == original(*args), (expr, args)

        outcome = recording.record.path[0]
        d_true, d_false = outcome.distance_true, outcome.distance_false
        assert d_true is not None and d_false is not None, (expr, args)
        # Eq. 8: non-negative, zero exactly on the taken side.
        assert d_true >= 0.0 and d_false >= 0.0
        if outcome.outcome:
            assert d_true == 0.0 and d_false > 0.0, (expr, args)
        else:
            assert d_false == 0.0 and d_true > 0.0, (expr, args)

        fast = FastRuntime(len(conds), saturated_mask=branch_mask(saturated))
        handle.install(fast)
        fast.begin()
        assert instrumented(*args) == value
        assert _bits(fast.r) == _bits(recording.r), (expr, args, saturated)
        assert fast.covered_branches() == recording.record.covered


@pytest.mark.parametrize(
    "func",
    [sp.nested_boolean, sp.demorgan, sp.chained_comparison, sp.ternary_test, sp.mixed_leaves],
    ids=lambda f: f.__name__,
)
def test_profiles_bit_identical_on_new_forms(func):
    """All three execution profiles agree on r for the new conditional forms."""
    from repro.instrument.program import instrument

    program = instrument(func)
    tracker = SaturationTracker(program)
    rng = np.random.default_rng(11)
    for _ in range(4):
        _, _, record = program.run(tuple(rng.normal(scale=4.0, size=program.arity)))
        tracker.add_execution(record)
    functions = {
        profile: RepresentingFunction(program, tracker, profile=profile)
        for profile in ExecutionProfile
    }
    for _ in range(60):
        x = rng.normal(scale=6.0, size=program.arity)
        values = {profile: f(x) for profile, f in functions.items()}
        reference = values[ExecutionProfile.FULL_TRACE]
        for profile, value in values.items():
            assert _bits(value) == _bits(reference), (func.__name__, profile, x)
