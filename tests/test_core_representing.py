"""Tests for the representing function (conditions C1/C2, Thm. 4.3)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.instrument.program import instrument
from repro.instrument.runtime import BranchId, Runtime
from tests import sample_programs as sp

moderate_doubles = st.floats(
    allow_nan=False, allow_infinity=False, min_value=-1.0e9, max_value=1.0e9
)


def fresh(func):
    program = instrument(func)
    tracker = SaturationTracker(program)
    return program, tracker, RepresentingFunction(program, tracker)


class TestConditionC1:
    """C1: FOO_R(x) >= 0 for all x."""

    @given(x=moderate_doubles)
    @settings(max_examples=200, deadline=None)
    def test_non_negative_everywhere(self, x):
        _, _, foo_r = fresh(sp.paper_foo)
        assert foo_r([x]) >= 0.0

    @given(x=moderate_doubles, y=moderate_doubles)
    @settings(max_examples=100, deadline=None)
    def test_non_negative_with_partial_saturation(self, x, y):
        program, tracker, foo_r = fresh(sp.nested_branches)
        _, _, record = program.run((1.0, 1.0), runtime=Runtime())
        tracker.add_execution(record)
        assert foo_r([x, y]) >= 0.0


class TestConditionC2:
    """C2: FOO_R(x) == 0 iff x saturates a new branch (Thm. 4.3)."""

    def test_zero_when_nothing_saturated(self):
        _, _, foo_r = fresh(sp.paper_foo)
        # With an empty saturation set, pen returns 0 at the first conditional.
        assert foo_r([0.7]) == 0.0
        assert foo_r([123.0]) == 0.0

    def test_positive_once_everything_saturated(self):
        program, tracker, foo_r = fresh(sp.paper_foo)
        for x in (0.7, 1.0, 1.1, -5.2):
            _, _, record = program.run((x,), runtime=Runtime())
            tracker.add_execution(record)
        assert tracker.all_saturated()
        for x in (-3.0, 0.0, 1.0, 2.0, 77.0):
            assert foo_r([x]) > 0.0

    @given(x=moderate_doubles)
    @settings(max_examples=150, deadline=None)
    def test_zero_iff_new_branch_saturated(self, x):
        """The formal statement of Thm. 4.3, checked pointwise."""
        program, tracker, foo_r = fresh(sp.paper_foo)
        # Saturate {0T, 1F} by executing x = 0.7 (covers 0T,1F; 1F saturated,
        # 0T not since its descendant 1T is uncovered).
        _, _, record = program.run((0.7,), runtime=Runtime())
        tracker.add_execution(record)
        before = set(tracker.saturated)
        value = foo_r([x])
        # Recompute what saturation would be if x were added.
        _, _, record_x = program.run((x,), runtime=Runtime())
        probe = SaturationTracker(program)
        probe.add_covered(set(tracker.covered))
        probe.add_execution(record_x)
        saturates_new = set(probe.saturated) - before != set()
        assert (value == 0.0) == saturates_new

    def test_reflects_paper_table1_shapes(self):
        """Row 2 of Table 1: with only 1F saturated, FOO_R(x) = ((x+1)^2-4)^2 for x<=1."""
        program, tracker, foo_r = fresh(sp.paper_foo)
        _, _, record = program.run((0.7,), runtime=Runtime())
        tracker.add_execution(record)
        assert foo_r([-3.0]) == pytest.approx(0.0)  # (x+1)^2 == 4 at x = -3
        assert foo_r([2.0]) == pytest.approx(0.0)  # x > 1 path: (x^2-4)^2 = 0
        assert foo_r([0.0]) == pytest.approx(9.0)  # ((0+1)^2-4)^2 = 9


class TestNonFiniteClamping:
    """Optimizers must never observe NaN or +/-inf objective values."""

    @pytest.mark.parametrize("bad", [float("nan"), float("inf"), float("-inf")])
    def test_non_finite_register_values_clamped(self, bad, monkeypatch):
        from repro.instrument.runtime import ExecutionRecord

        program = instrument(sp.single_branch)
        foo_r = RepresentingFunction(program)
        monkeypatch.setattr(
            program, "run", lambda args, runtime=None: (None, bad, ExecutionRecord())
        )
        value = foo_r([0.0])
        assert value == 1.0e300
        assert value == foo_r.last_value


class TestInterface:
    def test_scalar_and_vector_inputs_agree(self):
        _, _, foo_r = fresh(sp.paper_foo)
        assert foo_r(0.3) == foo_r([0.3])

    def test_wrong_arity_rejected(self):
        _, _, foo_r = fresh(sp.nested_branches)
        with pytest.raises(ValueError):
            foo_r([1.0])

    def test_evaluation_counter_and_record(self):
        _, _, foo_r = fresh(sp.paper_foo)
        foo_r([0.1])
        value, record = foo_r.evaluate_with_record([5.0])
        assert foo_r.evaluations == 2
        assert record.covered
        assert value == foo_r.last_value
