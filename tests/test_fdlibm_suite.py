"""Tests for the benchmark suite registry and the instrumentability of every port."""

from __future__ import annotations

import math

import pytest

from repro.fdlibm.excluded import EXCLUDED, excluded_by_reason
from repro.fdlibm.suite import BENCHMARKS, PAPER_MEANS, get_case, iter_cases
from repro.instrument.program import instrument
from repro.instrument.runtime import Runtime


class TestRegistry:
    def test_forty_benchmark_functions(self):
        assert len(BENCHMARKS) == 40

    def test_keys_are_unique(self):
        keys = [case.key for case in BENCHMARKS]
        assert len(keys) == len(set(keys))

    def test_lookup_by_name_and_key(self):
        assert get_case("tanh").file == "s_tanh.c"
        assert get_case("e_pow.c:ieee754_pow(double,double)").arity == 2
        with pytest.raises(KeyError):
            get_case("does_not_exist")

    def test_every_row_resolves_by_key_and_bare_function_name(self):
        """Regression: the e_sqrt row was registered as ``iddd754_sqrt``."""
        for case in BENCHMARKS:
            assert get_case(case.key) is case
            assert get_case(case.function.split("(")[0]) is case
            assert get_case(case.entry.__name__) is case

    def test_sqrt_typo_fixed(self):
        case = get_case("ieee754_sqrt")
        assert case.file == "e_sqrt.c"
        assert case.function == "ieee754_sqrt(double)"

    def test_function_names_match_entry_ports(self):
        """Every row's C name is a suffix-consistent match of its Python port."""
        for case in BENCHMARKS:
            bare = case.function.split("(")[0]
            assert case.entry.__name__.endswith(bare) or case.entry.__name__ == bare, case.key

    def test_iter_cases_limit(self):
        assert len(list(iter_cases(limit=5))) == 5
        assert len(list(iter_cases())) == 40

    def test_paper_branch_counts_match_table2(self):
        reference = {"s_tanh.c:tanh(double)": 12, "e_pow.c:ieee754_pow(double,double)": 114,
                     "k_cos.c:kernel_cos(double,double)": 8, "s_tan.c:tan(double)": 4}
        for key, branches in reference.items():
            assert get_case(key).paper.branches == branches

    def test_paper_means_match_headline_numbers(self):
        assert PAPER_MEANS["coverme_branch"] == 90.8
        assert PAPER_MEANS["rand_branch"] == 38.0
        assert PAPER_MEANS["afl_branch"] == 72.9
        assert PAPER_MEANS["austin_branch"] == 42.8

    def test_arities_are_one_or_two(self):
        assert {case.arity for case in BENCHMARKS} == {1, 2}

    def test_callable_matches_arity(self):
        for case in BENCHMARKS:
            value = case.entry(*([0.5] * case.arity))
            assert value is not None


class TestInstrumentability:
    """Every benchmark port must be instrumentable and runnable when instrumented."""

    @pytest.mark.parametrize("case", BENCHMARKS, ids=[c.key for c in BENCHMARKS])
    def test_instrument_and_run(self, case):
        program = instrument(case.entry)
        assert program.n_conditionals > 0
        args = tuple([0.5] * case.arity)
        value, r, record = program.run(args, runtime=Runtime())
        assert record.path, "at least one conditional should execute"
        # Instrumentation must not change the computed value.
        original = case.entry(*args)
        if isinstance(original, float) and math.isnan(original):
            assert isinstance(value, float) and math.isnan(value)
        else:
            assert value == original

    @pytest.mark.parametrize("case", BENCHMARKS, ids=[c.key for c in BENCHMARKS])
    def test_branch_count_close_to_paper(self, case):
        """Ported branch counts stay within a factor of two of Gcov's counts."""
        program = instrument(case.entry)
        ported = program.n_branches
        paper = case.paper.branches
        assert ported >= paper / 2.0
        assert ported <= paper * 2.0


class TestConditionalCompleteness:
    """Sect. 5.3 promises every conditional gets distance guidance."""

    @pytest.mark.parametrize("case", BENCHMARKS, ids=[c.key for c in BENCHMARKS])
    def test_no_distance_blind_conditionals(self, case):
        program = instrument(case.entry, extra_functions=case.extras)
        assert program.fallback_conditionals == ()

    def test_nested_boolean_functions_receive_guidance(self):
        """The eight nested-boolean entries lower to composition trees."""
        nested = ("ieee754_cosh", "ieee754_pow", "ieee754_remainder", "ieee754_scalb",
                  "ieee754_sinh", "ieee754_sqrt", "fdlibm_atan", "fdlibm_nextafter")
        for name in nested:
            case = get_case(name)
            program = instrument(case.entry)
            assert program.conditional_forms().get("boolean", 0) >= 1, name
            assert program.fallback_conditionals == ()

    def test_pow_with_extras_exceeds_prior_branch_count(self):
        """Helper callees count toward Table 2: pow+sqrt must beat bare pow's 100."""
        case = get_case("ieee754_pow")
        assert case.extras, "pow should wire ieee754_sqrt as an extra"
        bare = instrument(case.entry)
        with_extras = instrument(case.entry, extra_functions=case.extras)
        assert bare.n_branches == 100
        assert with_extras.n_branches > 100
        assert with_extras.n_branches <= 2 * case.paper.branches

    def test_extras_move_branch_totals_toward_paper(self):
        for name in ("fdlibm_sin", "fdlibm_cos", "fdlibm_tan", "ieee754_scalb"):
            case = get_case(name)
            assert case.extras, name
            bare = instrument(case.entry)
            with_extras = instrument(case.entry, extra_functions=case.extras)
            assert with_extras.n_branches > bare.n_branches, name


class TestExclusions:
    def test_table4_size(self):
        assert len(EXCLUDED) == 52

    def test_grouping_reasons(self):
        groups = excluded_by_reason()
        assert set(groups) == {"no branch", "unsupported input type", "static C function"}
        assert len(groups["static C function"]) == 5
        assert len(groups["unsupported input type"]) == 11

    def test_no_overlap_with_benchmarks(self):
        benchmark_functions = {case.function for case in BENCHMARKS}
        excluded_functions = {item.function for item in EXCLUDED}
        assert not benchmark_functions & excluded_functions
