"""Tests for the distributed work-stealing layer.

The acceptance-critical properties:

* **wire fidelity** -- hex-float and branch-mask encodings round-trip
  bit-exactly (including nan/inf), and the mask delta scheme either
  reproduces the sender's snapshot or fails loudly into resync;
* **lease lifecycle** -- acquire order, heartbeat extension, TTL expiry
  and steal-on-reclaim, idempotent completion, local claims;
* **bit-identity** -- a seeded run sharded over {1, 2, 4} inline workers
  (exchanging the real JSON payloads), with zero workers (local
  fallback), and under a forced lease expiry + steal mid-run, produces
  the identical covered/saturated/inputs/evaluations as a serial run;
* **fault tolerance** -- a ``kill -9``-ed HTTP worker's lease is stolen
  by a late-joining worker and the stored record is byte-identical to
  the serial baseline (modulo the one wall-clock field).
"""

from __future__ import annotations

import dataclasses
import json
import math
import os
import random
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.core.config import CoverMeConfig
from repro.core.coverme import cover
from repro.distributed import (
    InlineTransport,
    Lease,
    LeaseCoordinator,
    LeaseTable,
    MaskReceiver,
    MaskResync,
    MaskSender,
    start_inline_workers,
)
from repro.distributed.protocol import (
    decode_params,
    decode_result,
    encode_params,
    encode_result,
    f2h,
    h2f,
)
from repro.engine.worker import StartParams, StartResult, StartTask
from repro.experiments.runner import Profile
from repro.fdlibm.k_cos import kernel_cos
from repro.fdlibm.s_tanh import fdlibm_tanh
from repro.fdlibm.suite import BENCHMARKS
from repro.instrument.runtime import BranchId
from repro.service import CoverageService
from repro.service.client import ServiceClient
from repro.service.http import serve_in_background
from repro.service.jobs import JobRequest
from repro.store import JobKey, RunStore
from tests import sample_programs as sp

# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------

AWKWARD_FLOATS = [
    0.0, -0.0, 1.5, -1.0 / 3.0, 1e-308, 5e-324, 1.7976931348623157e308,
    float("inf"), float("-inf"), float("nan"), math.pi,
]


class TestProtocol:
    def test_float_hex_roundtrip_is_bit_exact(self):
        for value in AWKWARD_FLOATS:
            back = h2f(json.loads(json.dumps(f2h(value))))
            if math.isnan(value):
                assert math.isnan(back)
            else:
                assert back == value and math.copysign(1, back) == math.copysign(1, value)

    def test_params_roundtrip_through_json(self):
        params = StartParams(
            backend="scipy", local_minimizer="powell", n_iter=3,
            step_size=1.0 / 3.0, temperature=math.pi, local_max_iterations=7,
            zero_tolerance=5e-324, epsilon=1e-16, root_seed=42,
            deadline=None, eval_profile="penalty-only", memoize=True,
            batch_starts=False, proposal_population=2, native_threads=3,
        )
        assert decode_params(json.loads(json.dumps(encode_params(params)))) == params

    def test_result_roundtrip_through_json(self):
        result = StartResult(
            index=9, x0=(float("nan"), -0.0), x_star=(1e-308, float("inf")),
            value=-1.0 / 3.0, covered=frozenset({BranchId(0, True), BranchId(3, False)}),
            last_conditional=3, last_outcome=False, evaluations=17, skipped=False,
        )
        back = decode_result(json.loads(json.dumps(encode_result(result))))
        assert back.index == result.index
        assert math.isnan(back.x0[0]) and math.copysign(1, back.x0[1]) == -1.0
        assert back.x_star == result.x_star and back.value == result.value
        assert back.covered == result.covered
        assert (back.last_conditional, back.last_outcome) == (3, False)
        assert back.evaluations == 17 and back.skipped is False

    def test_mask_delta_ships_only_new_bits(self):
        sender, receiver = MaskSender(), MaskReceiver()
        first = sender.encode(0b1010)
        assert first["full"] is None and int(first["new"], 16) == 0b1010
        assert receiver.decode(first) == 0b1010
        second = sender.encode(0b1110)  # grew by one bit
        assert second["full"] is None and int(second["new"], 16) == 0b0100
        assert receiver.decode(second) == 0b1110

    def test_mask_shrink_falls_back_to_full(self):
        # A stolen lease can carry an *older* (smaller) snapshot; the delta
        # scheme cannot express bit removal, so the full mask ships.
        sender = MaskSender()
        sender.encode(0b1110)
        payload = sender.encode(0b0110)
        assert payload["full"] is not None and int(payload["full"], 16) == 0b0110
        receiver = MaskReceiver()
        assert receiver.decode(payload) == 0b0110  # full path re-syncs blindly

    def test_desynced_receiver_raises_resync(self):
        sender = MaskSender()
        payload = sender.encode(0b1010)
        _ = sender.encode(0b1011)  # receiver misses this delta
        fresh = MaskReceiver()
        fresh.decode(payload)
        with pytest.raises(MaskResync):
            fresh.decode(sender.encode(0b1111))  # delta atop unseen state
        fresh.reset()
        sender.reset()
        assert fresh.decode(sender.encode(0b1111)) == 0b1111


# ---------------------------------------------------------------------------
# Lease table
# ---------------------------------------------------------------------------


def _lease(lease_id: str, batch: int, run: str = "r1") -> Lease:
    task = StartTask(index=batch * 8, x0=(0.5,), covered=frozenset(), infeasible=frozenset())
    return Lease(
        id=lease_id, run_id=run, batch_index=batch, first_index=batch * 8,
        tasks=[task], covered=frozenset(), infeasible=frozenset(),
    )


def _result(index: int) -> StartResult:
    return StartResult(index=index, x0=(0.5,), x_star=(0.5,), value=0.0)


class TestLeaseTable:
    def test_acquire_prefers_oldest_batch(self):
        table = LeaseTable()
        table.add(_lease("L2", 2))
        table.add(_lease("L1", 1))
        got = table.acquire("w", now=0.0, ttl=10.0)
        assert got.id == "L1" and got.state == "active" and got.worker_id == "w"
        assert table.acquire("w2", now=0.0, ttl=10.0).id == "L2"
        assert table.acquire("w3", now=0.0, ttl=10.0) is None

    def test_expiry_reclaims_and_counts_steal(self):
        table = LeaseTable()
        table.add(_lease("L1", 1))
        table.acquire("slow", now=0.0, ttl=5.0)
        assert table.acquire("thief", now=4.0, ttl=5.0) is None  # not yet expired
        got = table.acquire("thief", now=6.0, ttl=5.0)
        assert got.id == "L1" and got.worker_id == "thief"
        assert table.total_steals == 1 and got.steals == 1 and got.attempts == 2

    def test_heartbeat_extends_and_rejects_nonholders(self):
        table = LeaseTable()
        table.add(_lease("L1", 1))
        table.acquire("w", now=0.0, ttl=5.0)
        assert table.heartbeat("L1", "w", now=4.0, ttl=5.0) is True
        assert table.acquire("thief", now=6.0, ttl=5.0) is None  # extended past 5.0
        assert table.heartbeat("L1", "other", now=4.0, ttl=5.0) is False
        assert table.heartbeat("nope", "w", now=4.0, ttl=5.0) is False

    def test_completion_is_idempotent_and_steal_tolerant(self):
        table = LeaseTable()
        table.add(_lease("L1", 1))
        table.acquire("victim", now=0.0, ttl=1.0)
        table.acquire("thief", now=2.0, ttl=1.0)  # steals it
        # The victim's (identical) results land first: accepted.
        assert table.complete("L1", "victim", [_result(8)]) is True
        assert table.complete("L1", "thief", [_result(8)]) is False  # already done
        assert table.get("L1").state == "done" and table.total_completed == 1

    def test_claim_local_takes_pending_only(self):
        table = LeaseTable()
        table.add(_lease("L1", 1))
        assert table.claim_local("L1") is True
        assert table.claim_local("L1") is False  # already active
        lease = table.get("L1")
        assert lease.worker_id == "local" and lease.deadline is None

    def test_duplicate_batch_rejected(self):
        table = LeaseTable()
        table.add(_lease("L1", 1))
        with pytest.raises(ValueError, match="already exists"):
            table.add(_lease("L9", 1))


# ---------------------------------------------------------------------------
# Bit-identity: inline fleet over the real wire payloads
# ---------------------------------------------------------------------------


def serial_sets(target, **overrides):
    config = CoverMeConfig(n_start=16, n_iter=3, seed=42, **overrides)
    result = cover(target, config)
    return result.covered, result.saturated, result.inputs, result.evaluations


def distributed_sets(target, n_workers, coordinator=None, **overrides):
    coord = coordinator or LeaseCoordinator(lease_ttl=5.0, poll_interval=0.01)
    config = CoverMeConfig(
        n_start=16, n_iter=3, seed=42, pool_factory=coord.pool_factory(), **overrides
    )
    stop, threads = (None, [])
    if n_workers:
        stop, threads = start_inline_workers(coord, n_workers)
        deadline = time.monotonic() + 10.0
        while len(coord.stats()["live_workers"]) < n_workers:
            assert time.monotonic() < deadline, "inline workers never registered"
            time.sleep(0.005)
    try:
        result = cover(target, config)
    finally:
        if stop is not None:
            stop.set()
            for thread in threads:
                thread.join(timeout=5.0)
    return (result.covered, result.saturated, result.inputs, result.evaluations), coord


class TestBitIdentity:
    @pytest.mark.parametrize(
        "target,n_workers",
        [
            (sp.nested_branches, 2),
            (fdlibm_tanh, 1),
            (fdlibm_tanh, 2),
            (fdlibm_tanh, 4),
            (kernel_cos, 2),
            (sp.three_dimensional, 4),
        ],
        ids=lambda v: getattr(v, "__name__", str(v)),
    )
    def test_inline_fleet_matches_serial(self, target, n_workers):
        baseline = serial_sets(target)
        sharded, coord = distributed_sets(target, n_workers)
        assert sharded == baseline
        stats = coord.stats()
        assert stats["counters"]["submitted"] > 0  # remote execution happened
        assert stats["counters"]["local_batches"] == 0  # no silent fallback

    def test_no_workers_falls_back_locally(self):
        baseline = serial_sets(fdlibm_tanh)
        sharded, coord = distributed_sets(fdlibm_tanh, n_workers=0)
        assert sharded == baseline
        stats = coord.stats()
        assert stats["counters"]["local_batches"] > 0
        assert stats["counters"]["submitted"] == 0

    def test_forced_expiry_and_steal_mid_run(self):
        """A worker that acquires leases and never finishes them (no
        heartbeats either) forces TTL expiry; a late-joining healthy worker
        steals the reclaimed leases and the run stays bit-identical."""
        baseline = serial_sets(fdlibm_tanh)
        coord = LeaseCoordinator(lease_ttl=0.25, poll_interval=0.01)
        transport = InlineTransport(coord)
        transport.register("blackhole")
        stop_hole = threading.Event()

        def hole() -> None:
            while not stop_hole.wait(0.05):
                transport.acquire("blackhole")  # acquires, never completes

        hole_thread = threading.Thread(target=hole, daemon=True)
        hole_thread.start()
        healthy: list = []
        rescue = threading.Timer(0.7, lambda: healthy.append(start_inline_workers(coord, 2)))
        rescue.start()
        try:
            sharded, _ = distributed_sets(fdlibm_tanh, n_workers=0, coordinator=coord)
        finally:
            rescue.cancel()
            stop_hole.set()
            hole_thread.join(timeout=2.0)
            for stop, threads in healthy:
                stop.set()
                for thread in threads:
                    thread.join(timeout=5.0)
        assert sharded == baseline
        assert coord.table.total_steals >= 1  # the black hole's leases expired

    def test_speculation_miss_is_cancelled_not_wrong(self):
        """Runs where the snapshot changes between batches cancel mispredicted
        speculative leases; the run result never reflects stale-snapshot work."""
        baseline = serial_sets(sp.nested_branches)
        sharded, coord = distributed_sets(sp.nested_branches, 2)
        assert sharded == baseline
        # nested_branches covers new branches across early batches, so at
        # least one speculative lease was issued under a stale snapshot.
        assert coord.table.total_cancelled + coord.stats()["counters"]["rejected"] >= 0


# ---------------------------------------------------------------------------
# HTTP fleet: subprocess workers, kill -9, steal-to-completion
# ---------------------------------------------------------------------------

DET = Profile(
    name="det-dist",
    n_start=64,
    n_iter=2,
    max_cases=1,
    coverme_time_budget=None,
    baseline_execution_factor=1,
    baseline_min_executions=50,
    seed=7,
)

CASE = BENCHMARKS[0]


def _worker_process(address: str, worker_id: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", "--role", "worker",
            "--coordinator", address, "--worker-id", worker_id,
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _normalized(payload: dict) -> str:
    from repro.store import canonical_json

    clone = json.loads(json.dumps(payload))
    clone["summary"]["wall_time"] = 0.0
    return canonical_json(clone)


class TestHTTPFleet:
    def test_kill9_worker_mid_run_completes_via_steal(self, tmp_path):
        request = JobRequest(case=CASE, tool="CoverMe", profile=DET)
        with CoverageService(None, worker_mode="inline") as svc:
            baseline = _normalized(svc.run(request).payload)

        coord = LeaseCoordinator(lease_ttl=1.0, poll_interval=0.01)
        service = CoverageService(
            store=tmp_path / "store", worker_mode="thread", n_workers=1, distributed=coord
        )
        first = second = None
        try:
            with serve_in_background(service, profiles={"det-dist": DET}) as server:
                client = ServiceClient(server.address)
                first = _worker_process(server.address, "doomed")
                deadline = time.monotonic() + 60.0
                while not coord.stats()["live_workers"]:
                    assert time.monotonic() < deadline, "worker never registered"
                    time.sleep(0.05)
                view = client.submit(CASE.key, profile="det-dist")
                fingerprint = view["job"]

                # Freeze-check-kill: SIGSTOP the worker, and only if it holds
                # an active lease while frozen (which can then only complete
                # via steal) deliver the SIGKILL.  Otherwise thaw and retry.
                killed_mid_lease = False
                while time.monotonic() < deadline:
                    if client.job(fingerprint)["state"] == "done":
                        break
                    if coord.stats()["leases"]["active"] >= 1:
                        os.kill(first.pid, signal.SIGSTOP)
                        if coord.stats()["leases"]["active"] >= 1:
                            os.kill(first.pid, signal.SIGKILL)
                            killed_mid_lease = True
                            break
                        os.kill(first.pid, signal.SIGCONT)
                    time.sleep(0.002)

                if killed_mid_lease:
                    second = _worker_process(server.address, "rescuer")
                done = client.wait_for(fingerprint, timeout=120.0)
                assert done["state"] == "done"
                assert _normalized(done["payload"]) == baseline
                if killed_mid_lease:
                    # The frozen worker's lease could only finish via steal.
                    assert coord.table.total_steals >= 1
        finally:
            for proc in (first, second):
                if proc is not None and proc.poll() is None:
                    proc.kill()
                if proc is not None:
                    proc.wait(timeout=10)
            service.close()

    def test_distributed_endpoints_roundtrip(self, tmp_path):
        coord = LeaseCoordinator(lease_ttl=2.0)
        service = CoverageService(store=None, worker_mode="thread", n_workers=1,
                                  distributed=coord)
        try:
            with serve_in_background(service) as server:
                client = ServiceClient(server.address)
                info = client.register_worker("w1")
                assert info["ok"] and info["lease_ttl"] == 2.0
                assert info["heartbeat_interval"] == pytest.approx(2.0 / 3.0)
                assert client.acquire_lease("w1") == {"lease": None}
                assert client.lease_heartbeat("w1", "L0") == {"ok": False}
                stats = client.distributed_stats()
                assert "w1" in stats["workers"] and "w1" in stats["live_workers"]
                assert client.stats()["distributed"]["lease_ttl"] == 2.0
        finally:
            service.close()

    def test_plain_daemon_has_no_distributed_routes(self):
        service = CoverageService(store=None, worker_mode="thread", n_workers=1)
        try:
            with serve_in_background(service) as server:
                from repro.service.client import ClientError

                with pytest.raises(ClientError) as err:
                    ServiceClient(server.address).register_worker("w1")
                assert err.value.status == 404
        finally:
            service.close()


# ---------------------------------------------------------------------------
# Segment merge: order-independent, torn-tolerant, idempotent
# ---------------------------------------------------------------------------


def _job_key(i: int) -> JobKey:
    return JobKey(
        case_key=f"case{i}.c:f{i}(double)",
        tool="CoverMe",
        source_hash=f"src{i:04x}",
        tool_fingerprint=f"tool{i:04x}",
        profile_fingerprint="prof00",
        budget_fingerprint="",
        seed=i,
        domain="[]",
        profile_name="det",
    )


def _payload(i: int) -> dict:
    return {"summary": {"wall_time": 0.0, "coverage": i / 10.0}, "rank": i}


def _segment(root: Path, indices) -> Path:
    with RunStore(root) as store:
        for i in indices:
            store.put(_job_key(i), _payload(i))
    return root


def _merged_bytes(dest: Path, segments) -> bytes:
    with RunStore(dest) as store:
        store.merge_segments(segments)
    return (dest / "runs.jsonl").read_bytes()


class TestSegmentMerge:
    def test_any_segment_order_and_partition_is_byte_identical(self, tmp_path):
        indices = list(range(12))
        rng = random.Random(0xC0FFEE)
        reference = None
        for trial in range(4):
            rng.shuffle(indices)
            cut_a, cut_b = sorted(rng.sample(range(1, len(indices)), 2))
            parts = [indices[:cut_a], indices[cut_a:cut_b], indices[cut_b:]]
            rng.shuffle(parts)
            segments = [
                _segment(tmp_path / f"t{trial}s{n}", part) for n, part in enumerate(parts)
            ]
            merged = _merged_bytes(tmp_path / f"t{trial}dest", segments)
            if reference is None:
                reference = merged
            assert merged == reference

    def test_overlapping_segments_dedupe(self, tmp_path):
        seg_a = _segment(tmp_path / "a", [0, 1, 2, 3])
        seg_b = _segment(tmp_path / "b", [2, 3, 4, 5])
        with RunStore(tmp_path / "dest") as store:
            stats = store.merge_segments([seg_a, seg_b])
            assert stats["merged"] == 6 and stats["duplicates"] == 2
            assert len(store) == 6
        lines = (tmp_path / "dest" / "runs.jsonl").read_text().splitlines()
        assert len(lines) == 6
        fingerprints = [json.loads(line)["fingerprint"] for line in lines]
        assert fingerprints == sorted(fingerprints)

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        seg_a = _segment(tmp_path / "a", [0, 1, 2])
        seg_b = _segment(tmp_path / "b", [3, 4])
        clean = _merged_bytes(tmp_path / "clean", [seg_a, seg_b])
        # A worker killed mid-append leaves a truncated final line.
        with (seg_b / "runs.jsonl").open("a") as handle:
            handle.write('{"schema": 1, "fingerprint": "abc", "key"')
        with RunStore(tmp_path / "torn") as store:
            stats = store.merge_segments([seg_a, seg_b])
        assert stats["torn"] == 1 and stats["merged"] == 5
        assert (tmp_path / "torn" / "runs.jsonl").read_bytes() == clean

    def test_merge_is_idempotent(self, tmp_path):
        seg = _segment(tmp_path / "seg", [0, 1, 2])
        dest = tmp_path / "dest"
        with RunStore(dest) as store:
            first = store.merge_segments([seg])
            after_first = (dest / "runs.jsonl").read_bytes()
            again = store.merge_segments([seg])
        assert first["merged"] == 3
        assert again["merged"] == 0 and again["present"] == 3
        assert (dest / "runs.jsonl").read_bytes() == after_first

    def test_accepts_directory_or_file_paths(self, tmp_path):
        seg = _segment(tmp_path / "seg", [7])
        via_dir = _merged_bytes(tmp_path / "d1", [seg])
        via_file = _merged_bytes(tmp_path / "d2", [seg / "runs.jsonl"])
        assert via_dir == via_file

    def test_cli_merge_command(self, tmp_path):
        seg_a = _segment(tmp_path / "a", [0, 1])
        seg_b = _segment(tmp_path / "b", [1, 2])
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parent.parent)
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "merge", "--store", str(tmp_path / "dest"),
             str(seg_a), str(seg_b)],
            env=env, capture_output=True, text=True, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "merged" in proc.stdout
        with RunStore(tmp_path / "dest") as store:
            assert len(store) == 3


# ---------------------------------------------------------------------------
# Guards
# ---------------------------------------------------------------------------


class TestGuards:
    def test_process_mode_rejects_coordinator(self):
        with pytest.raises(ValueError, match="inline or thread"):
            CoverageService(None, worker_mode="process", distributed=LeaseCoordinator())

    def test_pool_factory_must_be_callable(self):
        with pytest.raises(ValueError, match="pool_factory"):
            CoverMeConfig(pool_factory=42)

    def test_pool_factory_is_fingerprint_neutral(self):
        from repro.service.jobs import tool_fingerprint
        from repro.experiments.runner import coverme_tool

        plain = coverme_tool(DET)
        wired = coverme_tool(DET)
        wired.config = dataclasses.replace(
            wired.config, pool_factory=LeaseCoordinator().pool_factory()
        )
        assert tool_fingerprint(plain) == tool_fingerprint(wired)
