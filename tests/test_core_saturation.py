"""Tests for saturation tracking (Def. 3.2, Lemma 3.3)."""

from __future__ import annotations

from repro.core.saturation import SaturationTracker
from repro.instrument.program import instrument
from repro.instrument.runtime import BranchId, Runtime
from tests import sample_programs as sp


def record_for(program, args):
    _, _, record = program.run(args, runtime=Runtime())
    return record


class TestPaperScenario:
    """The walk-through of Def. 3.2: covering {0T, 0F, 1F} saturates {0F, 1F}."""

    def test_partial_coverage_partial_saturation(self, nested_program):
        tracker = SaturationTracker(nested_program)
        # Program: if x>0: (if y>0: 1 else 2)  else: (if y==5: 3 else 4)
        tracker.add_covered({BranchId(0, True), BranchId(0, False), BranchId(1, False)})
        # 1F has no descendants -> saturated; 0T's descendant 1T is uncovered.
        assert BranchId(1, False) in tracker.saturated
        assert BranchId(0, True) not in tracker.saturated
        # 0F's descendants (conditional 2) are uncovered either.
        assert BranchId(0, False) not in tracker.saturated

    def test_full_coverage_saturates_everything(self, nested_program):
        tracker = SaturationTracker(nested_program)
        for args in [(1.0, 1.0), (1.0, -1.0), (-1.0, 5.0), (-1.0, 0.0)]:
            tracker.add_execution(record_for(nested_program, args))
        assert tracker.all_covered()
        assert tracker.all_saturated()
        assert tracker.branch_coverage() == 1.0


class TestIncrementalUpdates:
    def test_add_execution_returns_new_branches(self, paper_foo_program):
        tracker = SaturationTracker(paper_foo_program)
        new = tracker.add_execution(record_for(paper_foo_program, (0.7,)))
        assert new == {BranchId(0, True), BranchId(1, False)}
        again = tracker.add_execution(record_for(paper_foo_program, (0.7,)))
        assert again == set()

    def test_coverage_fraction(self, paper_foo_program):
        tracker = SaturationTracker(paper_foo_program)
        tracker.add_execution(record_for(paper_foo_program, (0.7,)))
        assert tracker.branch_coverage() == 0.5
        assert tracker.n_covered == 2
        assert tracker.uncovered() == frozenset({BranchId(0, False), BranchId(1, True)})

    def test_lemma_3_3_saturation_iff_coverage(self, paper_foo_program):
        """Saturating all branches is equivalent to covering all branches."""
        tracker = SaturationTracker(paper_foo_program)
        for x in (0.7, 1.0, 1.1, -5.2):
            tracker.add_execution(record_for(paper_foo_program, (x,)))
        assert tracker.all_covered() == tracker.all_saturated()
        assert tracker.all_saturated()


class TestInfeasibleMarks:
    def test_infeasible_counts_for_saturation_not_coverage(self, paper_foo_program):
        tracker = SaturationTracker(paper_foo_program)
        tracker.add_execution(record_for(paper_foo_program, (0.7,)))
        tracker.add_execution(record_for(paper_foo_program, (5.0,)))
        # Only 1T remains; pretend the heuristic deems it infeasible.
        assert not tracker.all_saturated()
        tracker.mark_infeasible(BranchId(1, True))
        assert tracker.all_saturated()
        assert not tracker.all_covered()
        assert tracker.branch_coverage() == 0.75

    def test_marking_twice_is_idempotent(self, paper_foo_program):
        tracker = SaturationTracker(paper_foo_program)
        tracker.mark_infeasible(BranchId(1, True))
        tracker.mark_infeasible(BranchId(1, True))
        assert tracker.infeasible == {BranchId(1, True)}
