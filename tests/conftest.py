"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CoverMeConfig
from repro.instrument.program import instrument
from tests import sample_programs as sp


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def paper_foo_program():
    return instrument(sp.paper_foo)


@pytest.fixture
def nested_program():
    return instrument(sp.nested_branches)


@pytest.fixture
def smoke_config():
    return CoverMeConfig.smoke()
