"""HTTP daemon tests: the wire protocol over a real (in-process) socket.

Each test runs the asyncio daemon on a background thread via
``serve_in_background`` and talks to it with the stdlib
:class:`~repro.service.client.ServiceClient` -- the same path the CI
smoke job exercises against a separately-spawned ``repro serve`` process.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.runner import Profile
from repro.fdlibm.suite import BENCHMARKS
from repro.service import CoverageService
from repro.service.client import ClientError, ServiceClient
from repro.service.http import serve_in_background
from repro.service.jobs import TOOL_FACTORIES

DET = Profile(
    name="det-http",
    n_start=6,
    n_iter=2,
    max_cases=2,
    coverme_time_budget=None,
    baseline_execution_factor=1,
    baseline_min_executions=200,
    seed=0,
)

CASE_KEY = BENCHMARKS[0].key


@pytest.fixture
def daemon(tmp_path):
    """A live daemon over a thread-mode service; yields (client, service)."""
    service = CoverageService(store=tmp_path / "store", worker_mode="thread", n_workers=1)
    try:
        with serve_in_background(service, profiles={"det-http": DET}) as server:
            yield ServiceClient(server.address), service
    finally:
        service.close()


class TestEndpoints:
    def test_healthz(self, daemon):
        client, _ = daemon
        assert client.healthz() == {"ok": True}

    def test_stats_shape(self, daemon):
        client, _ = daemon
        stats = client.stats()
        assert stats["mode"] == "thread"
        assert {"submitted", "executed", "cache_hits", "coalesced"} <= set(stats["counters"])
        assert stats["store"]["persistent"] is True

    def test_submit_poll_and_cache_hit(self, daemon):
        client, service = daemon
        submitted = client.submit(CASE_KEY, tool="CoverMe", profile="det-http")
        assert submitted["state"] in ("queued", "running", "done")
        fingerprint = submitted["job"]
        done = client.wait_for(fingerprint, timeout=120)
        assert done["state"] == "done" and not done["cached"]
        assert done["evaluations"] > 0
        assert done["payload"]["summary"]["n_branches"] > 0

        # Identical resubmission: served from the result cache, zero
        # executions -- the daemon replies with an already-finished job.
        again = client.submit(CASE_KEY, tool="CoverMe", profile="det-http")
        assert again["state"] == "done" and again["cached"]
        assert again["payload"] == done["payload"]
        counters = client.stats()["counters"]
        assert counters["executed"] == 1 and counters["cache_hits"] == 1

    def test_cache_hit_is_http_200_and_queued_is_202(self, daemon):
        client, _ = daemon
        def submit_raw(body: dict):
            request = urllib.request.Request(
                client.base_url + "/jobs",
                data=json.dumps(body).encode(),
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=30) as response:
                return response.status, json.loads(response.read())

        body = {"case": CASE_KEY, "tool": "CoverMe", "profile": "det-http"}
        status, view = submit_raw(body)
        assert status == 202  # admitted, not yet resolved
        client.wait_for(view["job"], timeout=120)
        status, view = submit_raw(body)
        assert status == 200 and view["cached"]

    def test_event_stream_with_offset(self, daemon):
        client, _ = daemon
        fingerprint = client.submit(CASE_KEY, tool="CoverMe", profile="det-http")["job"]
        client.wait_for(fingerprint, timeout=120)
        events = list(client.events(fingerprint))
        names = [event["event"] for event in events]
        assert names[0] == "queued" and names[-1] == "done"
        assert "running" in names
        assert "progress" in names  # engine batch progress reached the wire
        # ?from=N skips the first N events.
        assert list(client.events(fingerprint, start=2)) == events[2:]

    def test_baseline_budget_derives_from_stored_coverme(self, daemon):
        """A baseline submitted after CoverMe gets the effort-derived budget
        (the pipeline's rule), observable in the job's fingerprint."""
        from repro.service.jobs import JobRequest, baseline_budget, build_job_key

        client, _ = daemon
        fingerprint = client.submit(CASE_KEY, tool="CoverMe", profile="det-http")["job"]
        coverme = client.wait_for(fingerprint, timeout=120)
        rand = client.submit(CASE_KEY, tool="Rand", profile="det-http")
        view = client.wait_for(rand["job"], timeout=120)
        assert view["state"] == "done"
        effort = max(coverme["evaluations"], DET.baseline_min_executions)
        expected = build_job_key(
            JobRequest(case=BENCHMARKS[0], tool="Rand", profile=DET),
            baseline_budget(DET, effort),
        )
        assert view["job"] == expected.fingerprint()


class TestRejections:
    def test_unknown_route_is_404(self, daemon):
        client, _ = daemon
        with pytest.raises(ClientError) as excinfo:
            client._request("GET", "/nope")
        assert excinfo.value.status == 404

    def test_unknown_job_is_404(self, daemon):
        client, _ = daemon
        with pytest.raises(ClientError) as excinfo:
            client.job("0" * 64)
        assert excinfo.value.status == 404

    @pytest.mark.parametrize(
        "body",
        [
            {},  # missing case
            {"case": "nope.c:nope"},  # unknown case
            {"case": CASE_KEY, "tool": "NoSuchTool"},  # unknown tool
            {"case": CASE_KEY, "profile": "no-such-profile"},  # unknown profile
            {"case": CASE_KEY, "profile": "det-http", "overrides": {"bogus": 1}},
            {"case": CASE_KEY, "profile": "det-http", "overrides": "n_start=4"},
        ],
    )
    def test_bad_submissions_are_400(self, daemon, body):
        client, _ = daemon
        with pytest.raises(ClientError) as excinfo:
            client._request("POST", "/jobs", body)
        assert excinfo.value.status == 400

    def test_invalid_json_body_is_400(self, daemon):
        client, _ = daemon
        request = urllib.request.Request(
            client.base_url + "/jobs",
            data=b"{not json",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400

    def test_full_queue_is_429_then_drains(self, tmp_path, monkeypatch):
        """Backpressure over the wire: a saturated admission queue maps to
        HTTP 429, and the same submission is admitted once capacity frees."""
        gate_started = threading.Event()
        gate_release = threading.Event()

        class HTTPGateTool:
            name = "Gate"

            def __init__(self, seed: int = 0):
                self.seed = seed
                self.last_evaluations = 0

            def __repr__(self) -> str:
                return f"HTTPGateTool(seed={self.seed})"

            def generate(self, program, budget):
                gate_started.set()
                assert gate_release.wait(timeout=30), "gate never released"
                low, high = program.signature.low, program.signature.high
                return [tuple((lo + hi) / 2 for lo, hi in zip(low, high))]

        monkeypatch.setitem(TOOL_FACTORIES, "Gate", lambda p: HTTPGateTool(seed=p.seed))
        service = CoverageService(
            store=tmp_path / "store", worker_mode="thread", n_workers=1, queue_limit=1
        )
        try:
            with serve_in_background(service, profiles={"det-http": DET}) as server:
                client = ServiceClient(server.address)

                def submit_gate(seed: int) -> dict:
                    return client.submit(
                        CASE_KEY, tool="Gate", profile="det-http", overrides={"seed": seed}
                    )

                first = submit_gate(0)
                assert gate_started.wait(timeout=30)  # worker busy behind the gate
                second = submit_gate(1)  # fills the queue (limit 1)
                with pytest.raises(ClientError) as excinfo:
                    submit_gate(2)
                assert excinfo.value.status == 429
                assert "retry later" in excinfo.value.payload["error"]
                gate_release.set()
                client.wait_for(first["job"], timeout=60)
                client.wait_for(second["job"], timeout=60)
                third = submit_gate(2)  # capacity freed: admitted now
                client.wait_for(third["job"], timeout=60)
                assert client.stats()["counters"]["rejected"] == 1
        finally:
            service.close()


class TestShutdown:
    def test_shutdown_stops_accepting_connections(self, tmp_path):
        service = CoverageService(store=tmp_path / "store", worker_mode="thread", n_workers=1)
        try:
            with serve_in_background(service) as server:
                client = ServiceClient(server.address)
                assert client.shutdown()["shutting_down"] is True
                # The listener is gone shortly after the response is sent.
                deadline = 50
                for _ in range(deadline):
                    try:
                        client.healthz()
                    except (urllib.error.URLError, ConnectionError):
                        break
                    time.sleep(0.1)
                else:
                    pytest.fail("daemon kept serving after /shutdown")
        finally:
            service.close()


class TestAuthAndRateLimit:
    """Per-client bearer auth + sliding-window rate limit (satellite for the
    distributed coordinator: these gate the worker-registration endpoints)."""

    TOKEN = "hunter2"

    @pytest.fixture
    def secured(self, tmp_path):
        service = CoverageService(
            store=tmp_path / "store", worker_mode="thread", n_workers=1
        )
        try:
            with serve_in_background(
                service,
                profiles={"det-http": DET},
                token=self.TOKEN,
                rate_limit=(5, 0.5),
            ) as server:
                yield server.address, service
        finally:
            service.close()

    def test_healthz_is_exempt_from_auth(self, secured):
        address, _ = secured
        assert ServiceClient(address).healthz() == {"ok": True}

    def test_missing_token_is_401(self, secured):
        address, _ = secured
        with pytest.raises(ClientError) as err:
            ServiceClient(address).stats()
        assert err.value.status == 401

    def test_wrong_token_is_401(self, secured):
        address, _ = secured
        with pytest.raises(ClientError) as err:
            ServiceClient(address, token="nope").stats()
        assert err.value.status == 401

    def test_correct_token_admits(self, secured):
        address, _ = secured
        stats = ServiceClient(address, token=self.TOKEN).stats()
        assert stats["mode"] == "thread"

    def test_distributed_register_requires_token(self, secured):
        # The worker-registration route sits behind the same gate.
        address, _ = secured
        with pytest.raises(ClientError) as err:
            ServiceClient(address).register_worker("w1")
        assert err.value.status == 401

    def test_sixth_rapid_request_is_429_with_retry_after(self, secured):
        address, _ = secured
        client = ServiceClient(address, token=self.TOKEN)
        for _ in range(5):
            client.stats()
        with pytest.raises(ClientError) as err:
            client.stats()
        assert err.value.status == 429
        assert err.value.payload["retry_after"] > 0
        # The Retry-After header rides on the raw HTTP response too.
        request = urllib.request.Request(
            f"{address}/stats",
            headers={"Authorization": f"Bearer {self.TOKEN}"},
        )
        with pytest.raises(urllib.error.HTTPError) as raw:
            urllib.request.urlopen(request, timeout=10)
        assert raw.value.code == 429
        assert float(raw.value.headers["Retry-After"]) > 0

    def test_window_expiry_readmits(self, secured):
        address, _ = secured
        client = ServiceClient(address, token=self.TOKEN)
        for _ in range(5):
            client.stats()
        with pytest.raises(ClientError):
            client.stats()
        time.sleep(0.6)  # let the 0.5 s window drain
        assert client.stats()["mode"] == "thread"

class TestRateLimiterUnit:
    def test_sliding_window(self):
        from repro.service.http import RateLimiter

        limiter = RateLimiter(limit=2, window=1.0)
        assert limiter.check("k", now=0.0) is None
        assert limiter.check("k", now=0.1) is None
        retry = limiter.check("k", now=0.2)
        assert retry == pytest.approx(0.8)
        assert limiter.check("other", now=0.2) is None  # independent key
        assert limiter.check("k", now=1.05) is None  # first slot expired
