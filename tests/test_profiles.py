"""Cross-layer tests for the two-tier evaluation runtime.

The contract: execution profiles are a pure performance knob.  Seeded engine
runs must produce bit-identical covered/saturated branch sets and generated
inputs for every profile, every worker count and with or without the
bit-pattern memo cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import CoverMeConfig
from repro.core.coverme import cover
from repro.core.representing import RepresentingFunction
from repro.core.saturation import SaturationTracker
from repro.fdlibm.k_cos import kernel_cos
from repro.fdlibm.s_tanh import fdlibm_tanh
from repro.instrument.program import instrument
from repro.instrument.runtime import EXECUTION_PROFILES, ExecutionProfile, Runtime
from tests import sample_programs as sp


def run_sets(target, **overrides):
    config = CoverMeConfig(n_start=16, n_iter=3, seed=42, **overrides)
    result = cover(target, config)
    return result.covered, result.saturated, frozenset(result.infeasible), tuple(result.inputs)


class TestEngineProfileDeterminism:
    @pytest.mark.parametrize("target", [sp.nested_branches, fdlibm_tanh, kernel_cos])
    def test_profiles_produce_identical_results(self, target):
        baseline = run_sets(target, eval_profile="full-trace")
        for profile in EXECUTION_PROFILES:
            assert run_sets(target, eval_profile=profile) == baseline, profile

    def test_profiles_and_workers_compose(self):
        baseline = run_sets(fdlibm_tanh, eval_profile="full-trace", n_workers=1)
        for profile in EXECUTION_PROFILES:
            for n_workers, mode in ((2, "thread"), (4, "process")):
                got = run_sets(
                    fdlibm_tanh, eval_profile=profile, n_workers=n_workers, worker_mode=mode
                )
                assert got == baseline, (profile, n_workers, mode)

    def test_memoization_does_not_change_results(self):
        with_memo = run_sets(kernel_cos, memoize=True)
        without = run_sets(kernel_cos, memoize=False)
        assert with_memo == without

    def test_default_profile_is_penalty_only(self):
        assert CoverMeConfig().eval_profile == ExecutionProfile.PENALTY_ONLY.value

    def test_unknown_profile_rejected(self):
        with pytest.raises(ValueError, match="unknown eval profile"):
            CoverMeConfig(eval_profile="fastest")


class TestRepresentingProfiles:
    """FOO_R values must be bit-identical under every profile."""

    @pytest.mark.parametrize("target", [sp.paper_foo, sp.nested_branches, sp.boolean_condition])
    def test_pointwise_value_equality(self, target):
        program = instrument(target)
        tracker = SaturationTracker(program)
        rng = np.random.default_rng(5)
        # Partially saturate so all pen cases (a/b/c of Def. 4.2) are hit.
        for _ in range(3):
            _, _, record = program.run(
                tuple(rng.normal(scale=5.0, size=program.arity)), runtime=Runtime()
            )
            tracker.add_execution(record)
        functions = {
            profile: RepresentingFunction(program, tracker, profile=profile)
            for profile in ExecutionProfile
        }
        for _ in range(100):
            x = rng.normal(scale=10.0, size=program.arity)
            values = {p: f(x) for p, f in functions.items()}
            assert len(set(values.values())) == 1, values

    def test_fast_profile_tracks_tracker_updates(self):
        """The saturation snapshot is re-read on every call, like FULL_TRACE."""
        program = instrument(sp.paper_foo)
        tracker = SaturationTracker(program)
        fast = RepresentingFunction(
            program, tracker, profile=ExecutionProfile.PENALTY_ONLY
        )
        assert fast([0.7]) == 0.0  # nothing saturated: pen case (a)
        for x in (0.7, 1.0, 1.1, -5.2):
            _, _, record = program.run((x,), runtime=Runtime())
            tracker.add_execution(record)
        assert tracker.all_saturated()
        assert fast([0.7]) > 0.0  # everything saturated: pen case (c)

    def test_evaluate_with_coverage_identical_across_profiles(self):
        program = instrument(sp.nested_branches)
        outcomes = {}
        for profile in ExecutionProfile:
            representing = RepresentingFunction(
                program, SaturationTracker(program), profile=profile
            )
            value, coverage = representing.evaluate_with_coverage([1.0, -1.0])
            outcomes[profile] = (value, coverage.covered, coverage.last_conditional,
                                 coverage.last_outcome)
        assert len(set(outcomes.values())) == 1, outcomes

    def test_evaluate_with_record_works_under_fast_profile(self):
        """Trace consumers get a real record even on a penalty-only instance."""
        program = instrument(sp.paper_foo)
        representing = RepresentingFunction(
            program, SaturationTracker(program), profile=ExecutionProfile.PENALTY_ONLY
        )
        value, record = representing.evaluate_with_record([0.5])
        assert record.path  # full trace materialized on demand
        assert representing.evaluations == 1
        assert value == representing.last_value

    def test_saturated_mask_matches_saturated_set(self):
        from repro.instrument.runtime import branch_mask

        program = instrument(sp.paper_foo)
        tracker = SaturationTracker(program)
        assert tracker.saturated_mask == 0
        _, _, record = program.run((0.7,), runtime=Runtime())
        tracker.add_execution(record)
        assert tracker.saturated_mask == branch_mask(tracker.saturated)

    def test_add_covered_mask_roundtrip(self):
        from repro.instrument.runtime import BranchId, branch_mask

        program = instrument(sp.paper_foo)
        tracker = SaturationTracker(program)
        new = tracker.add_covered_mask(branch_mask({BranchId(0, True), BranchId(1, False)}))
        assert new == {BranchId(0, True), BranchId(1, False)}
        assert tracker.covered == {BranchId(0, True), BranchId(1, False)}
