"""Smoke tests for the experiment harnesses (tables and figures)."""

from __future__ import annotations

import pytest

from repro.experiments import figure2, figure5, table1, table2, table3, table4, table5
from repro.experiments.runner import PROFILES, Profile, compare_tools, coverme_tool, format_table, mean
from repro.fdlibm.suite import BENCHMARKS

TINY_PROFILE = Profile(
    name="tiny",
    n_start=6,
    n_iter=2,
    max_cases=2,
    coverme_time_budget=1.0,
    baseline_execution_factor=1,
    baseline_min_executions=300,
)


class TestProfiles:
    def test_registered_profiles(self):
        assert set(PROFILES) == {"smoke", "default", "full"}
        assert PROFILES["full"].n_start == 500  # the paper's setting

    def test_profile_builds_config(self):
        config = PROFILES["smoke"].coverme_config()
        assert config.local_minimizer == "powell"


class TestRunnerInfrastructure:
    def test_compare_tools_produces_rows(self):
        rows = table2.run(TINY_PROFILE, cases=BENCHMARKS[:2])
        assert len(rows) == 2
        for row in rows:
            assert set(row.results) == {"CoverMe", "Rand", "AFL"}
            for tool in row.results:
                assert 0.0 <= row.coverage(tool) <= 100.0

    def test_format_table_contains_means(self):
        rows = table2.run(TINY_PROFILE, cases=BENCHMARKS[:1])
        text = format_table(rows, ("Rand", "AFL", "CoverMe"), title="demo")
        assert "MEAN" in text
        assert "demo" in text

    def test_mean_ignores_nan(self):
        assert mean([1.0, float("nan"), 3.0]) == 2.0

    def test_coverme_tool_adapter(self):
        tool = coverme_tool(TINY_PROFILE)
        assert tool.name == "CoverMe"


class TestTable1:
    def test_scenario_reaches_full_saturation(self):
        steps = table1.run(n_start=40, seed=0)
        assert steps
        final = steps[-1]
        # All four branches of the example eventually saturate.
        assert len(final.saturated) == 4

    def test_representing_function_initially_zero(self):
        values = table1.representing_function_values([-3.0, 0.7, 2.0, 10.0])
        assert values == [0.0, 0.0, 0.0, 0.0]


class TestFigure2:
    def test_objectives_match_paper(self):
        assert figure2.figure2a_objective(0.5) == 0.0
        assert figure2.figure2a_objective(3.0) == pytest.approx(4.0)
        assert figure2.figure2b_objective(-3.0) == 0.0
        assert figure2.figure2b_objective(2.0) == 0.0

    def test_basinhopping_beats_local_from_bad_start(self):
        results = figure2.run(seed=1)
        bh = [r for r in results if r.method == "basinhopping" and r.start == 6.0]
        assert bh and bh[0].minimum_value == pytest.approx(0.0, abs=1e-6)


class TestTables2To5:
    def test_table2_summary_keys(self):
        rows = table2.run(TINY_PROFILE, cases=BENCHMARKS[:1])
        summary = table2.summarize(rows)
        assert set(summary) >= {"Rand", "AFL", "CoverMe", "improvement_vs_rand"}

    def test_table3_summary_speedup(self):
        rows = table3.run(TINY_PROFILE, cases=BENCHMARKS[:1])
        summary = table3.summarize(rows)
        assert summary["speedup"] > 0.0
        assert "coverage_improvement" in summary

    def test_table4_matches_registry(self):
        groups = table4.run()
        assert sum(len(items) for items in groups.values()) == 52

    def test_table5_line_coverage(self):
        rows = table5.run(TINY_PROFILE, cases=BENCHMARKS[:1])
        for tool in ("Rand", "AFL", "CoverMe"):
            value = table5.line_percent(rows[0], tool)
            assert 0.0 <= value <= 100.0

    def test_figure5_series_align_with_rows(self):
        rows = table2.run(TINY_PROFILE, cases=BENCHMARKS[:2])
        series = figure5.series_from_rows(rows)
        assert {s.tool for s in series} == {"Rand", "AFL", "CoverMe"}
        assert all(len(s.values) == 2 for s in series)
        art = figure5.render_ascii(series)
        assert "Figure 5" in art
