"""Tests for the local optimization algorithms (line search, Powell, Nelder-Mead, compass)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.optimize.local import (
    bracket_minimum,
    compass_search,
    get_local_minimizer,
    golden_section,
    minimize_scalar,
    nelder_mead,
    powell,
)

LOCAL_MINIMIZERS = [powell, nelder_mead, compass_search]


def quadratic(x):
    x = np.atleast_1d(x)
    return float((x[0] - 3.0) ** 2)


def paper_equation_1(x):
    """f(x1, x2) = (x1-3)^2 + (x2-5)^2 with minimum point (3, 5)."""
    x = np.atleast_1d(x)
    return float((x[0] - 3.0) ** 2 + (x[1] - 5.0) ** 2)


def piecewise_flat(x):
    """The Fig. 2(a) objective: flat for x <= 1, quadratic beyond."""
    x = float(np.atleast_1d(x)[0])
    return 0.0 if x <= 1.0 else (x - 1.0) ** 2


def far_threshold(x):
    """Zero only beyond a large threshold -- needs the expanding bracket."""
    x = float(np.atleast_1d(x)[0])
    return 0.0 if x >= 1.0e12 else (1.0e12 - x) ** 2 / 1.0e24


class TestLineSearch:
    def test_bracket_contains_minimum(self):
        low, mid, high, _ = bracket_minimum(lambda t: (t - 7.0) ** 2, t0=0.0, step=1.0)
        assert low <= 7.0 <= high

    def test_golden_section_refines(self):
        t, f, _ = golden_section(lambda t: (t - 7.0) ** 2, 0.0, 20.0)
        assert t == pytest.approx(7.0, abs=1e-5)
        assert f == pytest.approx(0.0, abs=1e-9)

    def test_minimize_scalar_handles_nan(self):
        t, f, _ = minimize_scalar(lambda t: float("nan") if t < 0 else (t - 2.0) ** 2, t0=1.0)
        assert f == pytest.approx(0.0, abs=1e-8)

    def test_minimize_scalar_travels_far(self):
        t, f, _ = minimize_scalar(far_threshold, t0=0.0, step=1.0)
        assert f == 0.0
        assert t >= 1.0e12

    @given(target=st.floats(min_value=-1e6, max_value=1e6))
    @settings(max_examples=50, deadline=None)
    def test_scalar_minimum_found_anywhere(self, target):
        t, f, _ = minimize_scalar(lambda t: (t - target) ** 2, t0=0.0, step=1.0)
        assert f <= 1e-6 * max(1.0, target * target)


class TestLocalMinimizers:
    @pytest.mark.parametrize("minimize", LOCAL_MINIMIZERS)
    def test_quadratic_1d(self, minimize):
        result = minimize(quadratic, np.array([10.0]))
        assert result.fun == pytest.approx(0.0, abs=1e-6)
        assert result.x[0] == pytest.approx(3.0, abs=1e-2)

    @pytest.mark.parametrize("minimize", LOCAL_MINIMIZERS)
    def test_paper_equation_1_in_2d(self, minimize):
        result = minimize(paper_equation_1, np.array([0.0, 0.0]), max_iterations=200)
        assert result.fun == pytest.approx(0.0, abs=1e-4)

    @pytest.mark.parametrize("minimize", LOCAL_MINIMIZERS)
    def test_flat_region_is_a_minimum(self, minimize):
        result = minimize(piecewise_flat, np.array([6.0]))
        assert result.fun == 0.0
        assert result.x[0] <= 1.0 + 1e-9

    @pytest.mark.parametrize("minimize", LOCAL_MINIMIZERS)
    def test_result_counts_evaluations(self, minimize):
        result = minimize(quadratic, np.array([5.0]))
        assert result.nfev > 0
        assert result.nit >= 1

    def test_powell_handles_nan_objective(self):
        def nan_for_negative(x):
            x = float(np.atleast_1d(x)[0])
            return float("nan") if x < -10.0 else (x - 1.0) ** 2

        result = powell(nan_for_negative, np.array([5.0]))
        assert math.isfinite(result.fun)
        assert result.fun == pytest.approx(0.0, abs=1e-6)

    def test_registry_lookup(self):
        assert get_local_minimizer("powell") is powell
        assert get_local_minimizer("Nelder-Mead") is nelder_mead
        with pytest.raises(ValueError):
            get_local_minimizer("gradient-descent")
