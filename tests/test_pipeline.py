"""Tests for the resumable experiment pipeline, its CLI, and the satellites.

The profile used here disables the CoverMe wall-clock budget so every tool's
output (coverage, executions, kept inputs) is a deterministic function of the
seed -- which is what lets the resume tests assert *byte-identical* rendered
artifacts across cold, warm and interrupted-then-resumed runs.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.report import ToolRunSummary
from repro.experiments import runner, table2
from repro.experiments.pipeline import (
    ExperimentSpec,
    PipelineStats,
    execute_plan,
    get_spec,
    plan_jobs,
    profile_fingerprint,
    run_specs,
)
from repro.experiments.runner import PROFILES, Profile, instrument_case
from repro.fdlibm.suite import BENCHMARKS, DEFAULT_INPUT_BOUND, get_case
from repro.store import RunStore, canonical_json

#: Deterministic profile: no wall-clock budgets, so coverage and execution
#: counts depend only on the seed and byte-identical re-rendering is exact.
DET_PROFILE = Profile(
    name="det-tiny",
    n_start=6,
    n_iter=2,
    max_cases=2,
    coverme_time_budget=None,
    baseline_execution_factor=1,
    baseline_min_executions=200,
    seed=0,
)


def _normalized_records(runs_path) -> list[str]:
    """Canonical ``runs.jsonl`` record lines with the one wall-clock field
    zeroed, sorted by content.

    ``wall_time`` is the single stored field that depends on the clock
    rather than the seed; append order depends on scheduling.  Everything
    else must be byte-identical across entry points, worker modes and
    shard counts, which is exactly what comparing these lists asserts.
    """
    import json

    lines = []
    for line in runs_path.read_text().splitlines():
        record = json.loads(line)
        record["payload"]["summary"]["wall_time"] = 0.0
        lines.append(canonical_json(record))
    return sorted(lines)


class TestPlanning:
    def test_plan_dedups_shared_jobs_across_specs(self):
        specs = [get_spec("table2"), get_spec("table5"), get_spec("figure5")]
        plan = plan_jobs(specs, DET_PROFILE)
        # Three specs share the same three tools over the same cases: each
        # (case, tool) pair appears exactly once in the plan.
        assert plan.n_jobs == len(plan.cases) * 3
        for case in plan.cases:
            jobs = plan.jobs_by_case[case.key]
            assert [job.tool for job in jobs][0] == "CoverMe"
            assert len({job.tool for job in jobs}) == len(jobs)
            # Table 5 needs line coverage, so the merged jobs measure lines.
            assert all(job.measure_lines for job in jobs)

    def test_plan_without_line_spec_skips_line_measurement(self):
        plan = plan_jobs([get_spec("table2")], DET_PROFILE)
        assert all(not job.measure_lines for job in plan.jobs())

    def test_profile_fingerprint_ignores_result_neutral_fields(self):
        assert profile_fingerprint(DET_PROFILE) == profile_fingerprint(
            dataclasses.replace(DET_PROFILE, max_cases=40, n_workers=8)
        )
        assert profile_fingerprint(DET_PROFILE) != profile_fingerprint(
            dataclasses.replace(DET_PROFILE, n_start=7)
        )


class TestResumableExecution:
    def test_warm_store_executes_nothing_and_renders_identically(self, tmp_path):
        root = tmp_path / "store"
        with RunStore(root) as store:
            cold = run_specs([get_spec("table2")], DET_PROFILE, store=store)
        assert cold.stats.executed == cold.stats.total == 6
        assert cold.stats.loaded == 0
        # Reload the store from disk to prove persistence, not memory reuse.
        with RunStore(root) as store:
            warm = run_specs([get_spec("table2")], DET_PROFILE, store=store)
        assert warm.stats.executed == 0
        assert warm.stats.loaded == warm.stats.total == 6
        assert warm.rendered["table2"] == cold.rendered["table2"]

    def test_combined_run_executes_each_shared_pair_once(self, tmp_path):
        specs = [get_spec("table2"), get_spec("table5"), get_spec("figure5")]
        with RunStore(tmp_path / "store") as store:
            report = run_specs(specs, DET_PROFILE, store=store)
            # 2 cases x 3 tools, not x3 specs.
            assert report.stats.total == 6
            assert report.stats.executed == 6
            assert set(report.rendered) == {"table2", "table5", "figure5"}
            # A later table2-only run is satisfied by the line-measuring records.
            warm = run_specs([get_spec("table2")], DET_PROFILE, store=store)
        assert warm.stats.executed == 0

    def test_interrupted_run_resumes_without_repeating_completed_jobs(self, tmp_path):
        root = tmp_path / "store"
        profile = dataclasses.replace(DET_PROFILE, max_cases=1)

        class KillAfter:
            """Store wrapper that dies before checkpointing the Nth record."""

            def __init__(self, store, allowed):
                self._store = store
                self._allowed = allowed

            def __getattr__(self, name):
                return getattr(self._store, name)

            def put(self, key, payload):
                if self._allowed == 0:
                    raise KeyboardInterrupt
                self._allowed -= 1
                self._store.put(key, payload)

        with RunStore(root) as store:
            with pytest.raises(KeyboardInterrupt):
                run_specs([get_spec("table2")], profile, store=KillAfter(store, 2))
        with RunStore(root) as store:
            assert len(store) == 2  # CoverMe + Rand checkpointed before the kill
            resumed = run_specs([get_spec("table2")], profile, store=store)
        assert resumed.stats.loaded == 2
        assert resumed.stats.executed == 1  # only the job the kill preempted
        # The resumed artifact is byte-identical to an uninterrupted run.
        with RunStore(tmp_path / "fresh") as store:
            fresh = run_specs([get_spec("table2")], profile, store=store)
        assert resumed.rendered["table2"] == fresh.rendered["table2"]

    def test_fresh_run_ignores_cached_records(self, tmp_path):
        with RunStore(tmp_path / "store") as store:
            run_specs([get_spec("table2")], DET_PROFILE, store=store)
            fresh = run_specs([get_spec("table2")], DET_PROFILE, store=store, resume=False)
        assert fresh.stats.executed == fresh.stats.total

    def test_render_gates_specs_individually(self, tmp_path):
        """A sibling spec's absent jobs must not suppress a complete spec."""
        with RunStore(tmp_path / "store") as store:
            run_specs([get_spec("table2")], DET_PROFILE, store=store)  # branch-only records
            report = run_specs(
                [get_spec("table2"), get_spec("table5")],
                DET_PROFILE,
                store=store,
                execute=False,
            )
        # table5 needs line-measuring records, which a branch-only store
        # cannot satisfy -- but table2's own records all resolved.
        assert report.missing_jobs
        assert "table2" in report.rendered
        assert "table5" not in report.rendered

    def test_render_mode_reports_missing_jobs_instead_of_executing(self, tmp_path):
        with RunStore(tmp_path / "store") as store:
            report = run_specs([get_spec("table2")], DET_PROFILE, store=store, execute=False)
        assert report.stats.executed == 0
        # Without a CoverMe record the baselines' budgets are underivable,
        # so every job of every case is missing.
        assert len(report.missing_jobs) == report.stats.missing > 0
        assert "table2" not in report.rendered

    def test_process_dispatch_checkpoints_into_persistent_store(self, tmp_path):
        """Process-mode dispatch into a persistent store works (service
        workers execute, the coordinating process writes) and its records
        match thread-mode records byte-for-byte, wall time aside."""
        plan = plan_jobs([get_spec("table2")], DET_PROFILE)
        with RunStore(tmp_path / "process-store") as store:
            _, stats, _ = execute_plan(plan, store=store, n_workers=2, worker_mode="process")
            assert stats.executed == stats.total > 0
        with RunStore(tmp_path / "thread-store") as store:
            execute_plan(plan, store=store, n_workers=2, worker_mode="thread")
        process_lines = _normalized_records(tmp_path / "process-store" / "runs.jsonl")
        thread_lines = _normalized_records(tmp_path / "thread-store" / "runs.jsonl")
        assert process_lines == thread_lines
        # Resuming from the process-written store loads everything.
        with RunStore(tmp_path / "process-store") as store:
            _, stats, _ = execute_plan(plan, store=store, n_workers=2, worker_mode="process")
            assert stats.executed == 0 and stats.loaded == stats.total

    def test_changing_seed_invalidates_cached_jobs(self, tmp_path):
        profile = dataclasses.replace(DET_PROFILE, max_cases=1)
        with RunStore(tmp_path / "store") as store:
            run_specs([get_spec("table2")], profile, store=store)
            reseeded = run_specs(
                [get_spec("table2")], dataclasses.replace(profile, seed=7), store=store
            )
        assert reseeded.stats.executed == reseeded.stats.total

    def test_legacy_compare_tools_accepts_store(self, tmp_path):
        factories = table2.tool_factories()
        with RunStore(tmp_path / "store") as store:
            first = runner.compare_tools(
                factories, DET_PROFILE, cases=BENCHMARKS[:1], store=store
            )
            second = runner.compare_tools(
                factories, DET_PROFILE, cases=BENCHMARKS[:1], store=store
            )
        assert [row.coverage("CoverMe") for row in first] == [
            row.coverage("CoverMe") for row in second
        ]
        # The warm pass loaded everything: identical summaries, same objects' wall times.
        assert first[0].results["Rand"].wall_time == second[0].results["Rand"].wall_time


class TestScriptSpecs:
    def test_script_specs_render_without_jobs(self):
        report = run_specs(
            [get_spec("table4"), get_spec("figure2")],
            DET_PROFILE,
            store=RunStore(None),
        )
        assert report.stats.total == 0
        assert "Table 4" in report.rendered["table4"]
        assert "Figure 2" in report.rendered["figure2"]

    def test_script_specs_not_executed_in_render_mode(self):
        calls = []
        spy = ExperimentSpec(
            name="spy", title="spy", script=lambda profile: calls.append(1) or "artifact"
        )
        report = run_specs([spy], DET_PROFILE, store=RunStore(None), execute=False)
        assert calls == []
        assert "spy" not in report.rendered
        assert report.missing_jobs == ["spy (script spec; requires `repro run`)"]

    def test_spec_without_tools_or_script_rejected(self):
        bogus = ExperimentSpec(name="bogus", title="bogus")
        with pytest.raises(ValueError, match="neither tools nor a script"):
            run_specs([bogus], DET_PROFILE)


class TestCli:
    @pytest.fixture(autouse=True)
    def det_profile(self, monkeypatch):
        monkeypatch.setitem(PROFILES, "det-tiny", dataclasses.replace(DET_PROFILE, max_cases=1))

    def test_run_render_ls_clean_round_trip(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        out = str(tmp_path / "arts")
        assert main(["run", "table2", "--profile", "det-tiny", "--store", store, "--out", out]) == 0
        cold = capsys.readouterr().out
        assert "Table 2 reproduction" in cold
        assert "3 executed, 0 loaded" in cold

        assert main(["run", "table2", "--profile", "det-tiny", "--store", store]) == 0
        warm = capsys.readouterr().out
        assert "0 executed, 3 loaded" in warm
        # Byte-identical artifact files across cold and warm runs.
        artifact = (tmp_path / "arts" / "table2_det-tiny.txt").read_text()
        assert artifact.strip() in cold
        assert artifact.strip() in warm

        assert main(["render", "table2", "--profile", "det-tiny", "--store", store]) == 0
        rendered = capsys.readouterr().out
        assert artifact.strip() in rendered

        assert main(["ls", "--store", store]) == 0
        listing = capsys.readouterr().out
        assert "3 records" in listing
        assert "CoverMe" in listing

        assert main(["clean", "--store", store]) == 0
        assert "dropped 3 records" in capsys.readouterr().out
        assert main(["ls", "--store", store]) == 0
        assert "empty" in capsys.readouterr().out

    def test_render_fails_on_missing_store_without_creating_it(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "s"
        rc = main(["render", "table2", "--profile", "det-tiny", "--store", str(target)])
        assert rc == 1
        assert "does not exist" in capsys.readouterr().err
        assert not target.exists()  # read-only commands must not create stores

    def test_render_fails_on_empty_store(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "s"
        target.mkdir()  # existing directory, no records
        rc = main(["render", "table2", "--profile", "det-tiny", "--store", str(target)])
        assert rc == 1
        assert "missing from store" in capsys.readouterr().err
        # Render is read-only even against an existing directory.
        assert list(target.iterdir()) == []

    def test_render_reports_script_specs_missing_instead_of_executing(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "s"
        target.mkdir()
        rc = main(["render", "table4", "--store", str(target)])
        assert rc == 1
        err = capsys.readouterr().err
        assert "script spec" in err
        assert "table4" in err

    def test_ls_does_not_create_store(self, tmp_path, capsys):
        from repro.cli import main

        target = tmp_path / "s"
        assert main(["ls", "--store", str(target)]) == 0
        assert "does not exist" in capsys.readouterr().out
        assert not target.exists()

    def test_run_rejects_unknown_spec(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "table99", "--store", str(tmp_path / "s")])

    def test_resume_and_fresh_conflict(self, tmp_path, capsys):
        from repro.cli import main

        rc = main(
            ["run", "table2", "--profile", "det-tiny", "--store", str(tmp_path / "s"),
             "--resume", "--fresh"]
        )
        assert rc == 2
        assert "contradict" in capsys.readouterr().err

    def test_no_resume_re_executes(self, tmp_path, capsys):
        from repro.cli import main

        store = str(tmp_path / "store")
        assert main(["run", "table2", "--profile", "det-tiny", "--store", store]) == 0
        capsys.readouterr()
        assert main(
            ["run", "table2", "--profile", "det-tiny", "--store", store, "--no-resume"]
        ) == 0
        assert "3 executed, 0 loaded" in capsys.readouterr().out

    def test_store_and_ephemeral_are_mutually_exclusive(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["run", "table2", "--store", str(tmp_path / "s"), "--ephemeral"])

    def test_deprecated_module_entry_point_delegates(self, monkeypatch):
        import repro.cli as cli

        calls = []
        monkeypatch.setattr(cli, "main", lambda argv: calls.append(argv) or 0)
        with pytest.warns(DeprecationWarning, match="deprecated"):
            rc = table2.main(["--profile", "smoke", "--cases", "1"])
        assert rc == 0
        assert calls == [["run", "table2", "--ephemeral", "--profile", "smoke", "--cases", "1"]]

    def test_deprecated_entry_point_honors_explicit_store(self, monkeypatch):
        import repro.cli as cli

        calls = []
        monkeypatch.setattr(cli, "main", lambda argv: calls.append(argv) or 0)
        with pytest.warns(DeprecationWarning):
            table2.main(["--store", "my-store"])
        # An explicit --store must not be silently overridden by --ephemeral.
        assert calls == [["run", "table2", "--store", "my-store"]]
        calls.clear()
        with pytest.warns(DeprecationWarning):
            table2.main(["--store=my-store"])  # the `=` form counts too
        assert calls == [["run", "table2", "--store=my-store"]]


def _banded(x: float) -> int:
    if x > 15.0:
        return 1
    return 0


class TestSatellites:
    def test_rand_samples_the_signature_domain(self):
        from repro.baselines.harness import Budget
        from repro.baselines.random_testing import RandomTester
        from repro.instrument.program import instrument
        from repro.instrument.signature import ProgramSignature

        program = instrument(
            _banded, signature=ProgramSignature(name="banded", arity=1, low=(10.0,), high=(20.0,))
        )
        kept = RandomTester(seed=0).generate(program, Budget(max_executions=50))
        assert kept  # the first execution always increases coverage
        assert all(10.0 <= x <= 20.0 for (x,) in kept)
        # Explicit bounds still override the signature box.
        override = RandomTester(seed=0, low=-1.0, high=1.0).generate(
            program, Budget(max_executions=50)
        )
        assert all(-1.0 <= x <= 1.0 for (x,) in override)

    def test_default_domain_is_the_historical_box(self):
        case = get_case("e_acos.c:ieee754_acos(double)")
        low, high = case.domain()
        assert low == (-DEFAULT_INPUT_BOUND,)
        assert high == (DEFAULT_INPUT_BOUND,)
        program = instrument_case(case)
        assert program.signature.low == low
        assert program.signature.high == high

    def test_domain_sensitive_cases_declare_their_own(self):
        scalb = get_case("e_scalb.c:ieee754_scalb(double,double)")
        low, high = scalb.domain()
        assert low == (-1.0e6, -70000.0)
        assert high == (1.0e6, 70000.0)
        assert instrument_case(scalb).signature.high == high
        pow_case = get_case("e_pow.c:ieee754_pow(double,double)")
        assert pow_case.domain()[1] == (1.0e6, 1100.0)

    def test_domain_is_part_of_the_job_fingerprint(self):
        from repro.experiments.pipeline import _domain_tag

        scalb = get_case("e_scalb.c:ieee754_scalb(double,double)")
        default = dataclasses.replace(scalb, low=None, high=None)
        assert _domain_tag(scalb) != _domain_tag(default)

    def test_mismatched_domain_arity_rejected(self):
        case = dataclasses.replace(BENCHMARKS[0], low=(-1.0, -1.0), high=(1.0, 1.0))
        with pytest.raises(ValueError, match="must match arity"):
            case.domain()

    def test_zero_denominator_coverage_convention(self):
        summary = ToolRunSummary(
            tool="Rand", program="p", n_branches=0, covered_branches=0,
            wall_time=0.0, executions=0,
        )
        # Both percentages use the same vacuous-coverage convention.
        assert summary.branch_coverage_percent == 100.0
        assert summary.line_coverage_percent == 100.0

    def test_budget_fingerprint_tracks_values(self):
        from repro.baselines.harness import Budget

        a = Budget(max_executions=100, max_seconds=None)
        assert a.fingerprint() == Budget(max_executions=100).fingerprint()
        assert a.fingerprint() != Budget(max_executions=101).fingerprint()
        assert a.fingerprint() != Budget(max_executions=100, max_seconds=1.0).fingerprint()

    def test_stats_describe_mentions_missing_only_when_present(self):
        stats = PipelineStats(total=3, executed=1, loaded=2)
        assert "missing" not in stats.describe()
        stats.missing = 1
        assert "missing" in stats.describe()
